"""Call graph rooted at the CLI, pool and engine entry points.

Edges are *resolved* static calls: direct names, import-expanded attribute
chains (re-exports chased through the symbol table), ``self.method()``
within a class, and class instantiation (an edge to ``__init__``).
Dynamic dispatch — a method on an object of unknown type, a callable
stored in a data structure — is out of scope and simply contributes no
edge; rules built on reachability are therefore *under*-approximate and
must treat unresolved calls as benign (documented per rule).

The root sets mirror how the program is actually entered:

* **cli** — ``main`` / ``_cmd_*`` in a ``cli`` module;
* **pool** — the fork/spawn job paths: worker loops (``_worker*`` or a
  ``Process(target=...)``), functions submitted as ``Job(fn=...)``, and
  functions shipped through ``EvaluationPool.worker_setup``;
* **engine** — public functions of a ``sim.engine`` module.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.program.symbols import FunctionInfo, ModuleInfo, ProgramModel

__all__ = ["CallSite", "CallGraph", "EntryPoints", "build_call_graph", "find_entry_points"]


@dataclass
class CallSite:
    """One call expression inside a function, with its resolution."""

    caller: str  # FunctionInfo.ref of the enclosing function
    node: ast.Call
    #: ``module:qualname`` of the resolved callee, or None when dynamic.
    callee: "str | None"
    #: The import-expanded dotted chain, even when unresolved ("numpy.sqrt").
    dotted: "str | None"


def _module_has_segments(name: str, pairs: "tuple[tuple[str, ...], ...]") -> bool:
    parts = name.split(".")
    for pair in pairs:
        n = len(pair)
        if any(tuple(parts[i : i + n]) == pair for i in range(len(parts) - n + 1)):
            return True
    return False


def _resolve_callee(
    model: ProgramModel, info: ModuleInfo, func: "FunctionInfo | None", node: ast.AST
) -> "tuple[str | None, str | None]":
    """``(callee_ref, dotted_chain)`` for a call/reference expression."""
    chain = info.ctx.resolve_call_chain(node)
    if not chain:
        return None, None
    dotted = ".".join(chain)
    # self.method() / cls.method() inside a class body.
    if func is not None and func.class_name and chain[0] in ("self", "cls"):
        if len(chain) == 2:
            target = info.functions.get(f"{func.class_name}.{chain[1]}")
            if target is not None:
                return target.ref, dotted
        return None, dotted
    resolution = model.resolve_in_module(info, node)
    if resolution is None:
        return None, dotted
    if resolution.kind == "function" and resolution.function is not None:
        return resolution.function.ref, dotted
    if resolution.kind == "class":
        if resolution.function is not None:  # the __init__ method
            return resolution.function.ref, dotted
        return None, dotted
    return None, dotted


@dataclass
class CallGraph:
    """Resolved static call edges over a :class:`ProgramModel`."""

    model: ProgramModel
    edges: "dict[str, tuple[str, ...]]" = field(default_factory=dict)
    sites: "dict[str, list[CallSite]]" = field(default_factory=dict)

    def callees(self, ref: str) -> "tuple[str, ...]":
        """Resolved direct callees of the function *ref*."""
        return self.edges.get(ref, ())

    def reachable(self, roots: "set[str] | list[str]") -> "set[str]":
        """Functions transitively reachable from *roots* (roots included)."""
        seen: "set[str]" = set()
        stack = [r for r in sorted(roots) if r in self.edges or self.model.function(r)]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(c for c in self.callees(current) if c not in seen)
        return seen

    def path(self, roots: "set[str] | list[str]", target: str) -> "list[str] | None":
        """A shortest root->target call chain, or None if unreachable."""
        from collections import deque

        parents: "dict[str, str | None]" = {r: None for r in sorted(roots)}
        queue = deque(sorted(roots))
        while queue:
            current = queue.popleft()
            if current == target:
                chain = [current]
                while parents[chain[-1]] is not None:
                    chain.append(parents[chain[-1]])  # type: ignore[arg-type]
                return list(reversed(chain))
            for callee in self.callees(current):
                if callee not in parents:
                    parents[callee] = current
                    queue.append(callee)
        return None


def build_call_graph(model: ProgramModel) -> CallGraph:
    """Extract every resolvable call edge from the program model."""
    graph = CallGraph(model)
    for func in model.functions():
        info = model.modules[func.module]
        sites: "list[CallSite]" = []
        targets: "set[str]" = set()
        for node in ast.walk(func.node):
            if not isinstance(node, ast.Call):
                continue
            callee, dotted = _resolve_callee(model, info, func, node.func)
            sites.append(CallSite(caller=func.ref, node=node, callee=callee, dotted=dotted))
            if callee is not None:
                targets.add(callee)
        graph.sites[func.ref] = sites
        graph.edges[func.ref] = tuple(sorted(targets))
    return graph


@dataclass
class EntryPoints:
    """The root sets the analysis walks from, by entry kind."""

    cli: "set[str]" = field(default_factory=set)
    pool: "set[str]" = field(default_factory=set)
    engine: "set[str]" = field(default_factory=set)

    def all(self) -> "set[str]":
        """Every root across the three kinds."""
        return self.cli | self.pool | self.engine


#: Constructor names marking a function as a pool dispatcher: anything it
#: lets escape as a value may run on the worker side of a fork.
_POOL_MARKERS = frozenset({"Job", "Process"})


def _escaped_function_refs(
    model: ProgramModel, info: ModuleInfo, func: FunctionInfo
) -> "set[str]":
    """Function references that escape *func* as values (not direct calls).

    A reference passed as ``Job(fn=...)``, ``Process(target=...)``, or
    packed into a ``worker_setup`` payload tuple is *escaped*: it will be
    invoked later, typically on the worker side of the pool.  Direct call
    positions are excluded — those are ordinary edges of the call graph.
    """
    call_positions = {
        id(node.func) for node in ast.walk(func.node) if isinstance(node, ast.Call)
    }
    # Exclude sub-expressions of call positions (``a.b`` inside ``a.b()``).
    refs: "set[str]" = set()
    for node in ast.walk(func.node):
        if not isinstance(node, (ast.Name, ast.Attribute)):
            continue
        if id(node) in call_positions:
            continue
        parent = info.ctx.parent(node)
        if isinstance(parent, ast.Attribute) or (
            isinstance(parent, ast.Call) and id(parent.func) == id(node)
        ):
            continue
        callee, _ = _resolve_callee(model, info, func, node)
        if callee is not None:
            refs.add(callee)
    return refs


def _is_pool_dispatcher(info: ModuleInfo, func: FunctionInfo) -> bool:
    """Whether *func* hands work to the evaluation pool.

    True when the body constructs a ``Job``/``Process`` or touches a
    ``worker_setup`` attribute — the three ways code crosses the fork
    boundary in this codebase.
    """
    for node in ast.walk(func.node):
        if isinstance(node, ast.Call):
            target = node.func
            name = (
                target.attr
                if isinstance(target, ast.Attribute)
                else target.id if isinstance(target, ast.Name) else None
            )
            if name in _POOL_MARKERS:
                return True
        if isinstance(node, ast.Attribute) and node.attr == "worker_setup":
            return True
    return False


def find_entry_points(model: ProgramModel) -> EntryPoints:
    """Discover the CLI / pool / engine roots of the program."""
    entries = EntryPoints()
    for func in model.functions():
        parts = func.module.split(".")
        if parts[-1] == "cli" and (
            func.name == "main" or func.name.startswith("_cmd_")
        ):
            entries.cli.add(func.ref)
        if _module_has_segments(func.module, (("sim", "engine"),)):
            public_func = func.class_name is None and not func.name.startswith("_")
            public_method = (
                func.class_name is not None
                and not func.class_name.startswith("_")
                and not func.name.startswith("_")
            )
            if public_func or public_method:
                entries.engine.add(func.ref)
        if func.name.startswith("_worker"):
            entries.pool.add(func.ref)
        info = model.modules[func.module]
        if _is_pool_dispatcher(info, func):
            # Over-approximate: every function value escaping a dispatcher
            # is treated as worker-side reachable.  For a fork-safety
            # analysis, too many roots is safe; too few is a missed race.
            entries.pool |= _escaped_function_refs(model, info, func)
    return entries
