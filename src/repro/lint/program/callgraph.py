"""Call graph rooted at the CLI, pool and engine entry points.

Edges are *resolved* static calls: direct names, import-expanded attribute
chains (re-exports chased through the symbol table), ``self.method()``
within a class, ``self.attr.method()`` where the attribute's class is
inferred from ``__init__`` (a constructor call or an annotated
parameter bound to the attribute), and class instantiation (an edge to
``__init__``).
Dynamic dispatch — a method on an object of unknown type, a callable
stored in a data structure — is out of scope and simply contributes no
edge; rules built on reachability are therefore *under*-approximate and
must treat unresolved calls as benign (documented per rule).

The root sets mirror how the program is actually entered:

* **cli** — ``main`` / ``_cmd_*`` in a ``cli`` module;
* **pool** — the fork/spawn job paths: worker loops (``_worker*`` or a
  ``Process(target=...)``), functions submitted as ``Job(fn=...)``, and
  functions shipped through ``EvaluationPool.worker_setup``;
* **engine** — public functions of a ``sim.engine`` module.

Edges carry a *kind* describing how control crosses them, mirroring the
concurrency hierarchy the service runs on:

* ``call``  — plain synchronous invocation (same frame stack);
* ``await`` — the call sits directly under an ``await`` (cooperative);
* ``spawn`` — the coroutine is handed to an asyncio driver
  (``create_task`` / ``ensure_future`` / ``gather`` / ``wait_for`` /
  ``shield`` / ``wait`` / ``run``) and runs as a loop task;
* ``executor`` — the function is shipped off the loop
  (``asyncio.to_thread`` / ``run_in_executor`` / executor ``submit``)
  and runs on a worker thread.

:func:`classify_contexts` propagates these kinds into a per-function
execution-context classification (loop / thread / worker), the lattice
ASYNC001 and RACE003 are built on.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field

from repro.lint.program.symbols import FunctionInfo, ModuleInfo, ProgramModel

__all__ = [
    "CallSite",
    "CallGraph",
    "EntryPoints",
    "ExecutionContexts",
    "build_call_graph",
    "classify_contexts",
    "find_entry_points",
    "in_async_context",
]


@dataclass
class CallSite:
    """One call expression inside a function, with its resolution."""

    caller: str  # FunctionInfo.ref of the enclosing function
    node: ast.Call
    #: ``module:qualname`` of the resolved callee, or None when dynamic.
    callee: "str | None"
    #: The import-expanded dotted chain, even when unresolved ("numpy.sqrt").
    dotted: "str | None"
    #: How control crosses the edge: "call" | "await" | "spawn" | "executor".
    kind: str = "call"
    #: Whether the call is lexically inside an ``async def`` (the enclosing
    #: function itself, or a nested coroutine folded into it).
    in_async: bool = False


#: asyncio drivers whose coroutine arguments become loop tasks.
_SPAWN_WRAPPERS = frozenset({
    "create_task", "ensure_future", "gather", "wait_for", "shield",
    "wait", "run",
})


def in_async_context(info: ModuleInfo, node: ast.AST) -> bool:
    """Whether *node*'s nearest enclosing function is an ``async def``."""
    for ancestor in info.ctx.ancestors(node):
        if isinstance(ancestor, ast.AsyncFunctionDef):
            return True
        if isinstance(ancestor, ast.FunctionDef):
            return False
    return False


def _spawn_wrapped_calls(info: ModuleInfo, node: ast.Call) -> "list[ast.Call]":
    """Inner coroutine calls handed to an asyncio spawn/driver wrapper."""
    chain = info.ctx.resolve_call_chain(node.func)
    is_wrapper = bool(chain) and chain[0] == "asyncio" and chain[-1] in _SPAWN_WRAPPERS
    if not is_wrapper and isinstance(node.func, ast.Attribute):
        # ``loop.create_task(...)`` / ``tg.create_task(...)`` on an
        # unresolved receiver still spawns its coroutine argument.
        is_wrapper = node.func.attr in ("create_task", "ensure_future")
    if not is_wrapper:
        return []
    return [arg for arg in node.args if isinstance(arg, ast.Call)]


def _executor_target_exprs(info: ModuleInfo, node: ast.Call) -> "list[ast.expr]":
    """Function expressions *node* ships off the event loop, if any."""
    chain = info.ctx.resolve_call_chain(node.func)
    if chain and chain[0] == "asyncio" and chain[-1] == "to_thread" and node.args:
        return [node.args[0]]
    if isinstance(node.func, ast.Attribute):
        if node.func.attr == "run_in_executor" and len(node.args) >= 2:
            return [node.args[1]]
        if node.func.attr == "submit" and node.args:
            # Guarded by resolution: ``.submit`` only contributes an edge
            # when the argument resolves to a known function.
            return [node.args[0]]
    return []


def _annotation_class_ref(
    model: ProgramModel, info: ModuleInfo, ann: "ast.AST | None", _depth: int = 0
) -> "str | None":
    """``module:Class`` named by a type annotation, or None.

    Unwraps string annotations (re-parsed), ``X | None`` unions, and
    ``Optional[X]`` — the shapes ``__init__`` signatures in this codebase
    actually use.  TYPE_CHECKING-only imports resolve like any other:
    the symbol table records them regardless of the guard.
    """
    if ann is None or _depth > 4:
        return None
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        try:
            ann = ast.parse(ann.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
        for side in (ann.left, ann.right):
            found = _annotation_class_ref(model, info, side, _depth + 1)
            if found is not None:
                return found
        return None
    if isinstance(ann, ast.Subscript):
        head = ann.value
        name = (
            head.attr if isinstance(head, ast.Attribute)
            else head.id if isinstance(head, ast.Name) else None
        )
        if name == "Optional":
            return _annotation_class_ref(model, info, ann.slice, _depth + 1)
        return None
    resolution = model.resolve_in_module(info, ann)
    if resolution is not None and resolution.kind == "class":
        return f"{resolution.module}:{resolution.class_name}"
    return None


def _value_class_ref(
    model: ProgramModel,
    info: ModuleInfo,
    value: ast.AST,
    ann_by_param: "dict[str, ast.AST]",
    _depth: int = 0,
) -> "str | None":
    """The class a ``self.<attr> = <value>`` binding stores, if inferable."""
    if _depth > 3:
        return None
    if isinstance(value, ast.IfExp):
        return _value_class_ref(
            model, info, value.body, ann_by_param, _depth + 1
        ) or _value_class_ref(model, info, value.orelse, ann_by_param, _depth + 1)
    if isinstance(value, ast.Call):
        resolution = model.resolve_in_module(info, value.func)
        if resolution is not None and resolution.kind == "class":
            return f"{resolution.module}:{resolution.class_name}"
        return None
    if isinstance(value, ast.Name) and value.id in ann_by_param:
        return _annotation_class_ref(model, info, ann_by_param[value.id])
    return None


def _self_attr_types(
    model: ProgramModel, info: ModuleInfo, class_name: str
) -> "dict[str, str]":
    """attr -> ``module:Class`` for ``self.<attr>`` bindings in ``__init__``.

    Two inference sources, both sound under this codebase's conventions:
    a constructor call assigned to the attribute, and a parameter whose
    annotation names a program class.  This is what lets
    ``self.store_chaos.maybe_damage()`` (a three-segment chain) resolve —
    without it every injected collaborator is a call-graph dead end.
    """
    cache: "dict[tuple[str, str], dict[str, str]] | None" = getattr(
        model, "_self_attr_cache", None
    )
    if cache is None:
        cache = {}
        model._self_attr_cache = cache  # type: ignore[attr-defined]
    key = (info.name, class_name)
    if key in cache:
        return cache[key]
    out: "dict[str, str]" = {}
    init = info.functions.get(f"{class_name}.__init__")
    if init is not None:
        args = init.node.args
        ann_by_param: "dict[str, ast.AST]" = {
            a.arg: a.annotation
            for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
            if a.annotation is not None
        }
        for stmt in ast.walk(init.node):
            targets: "list[ast.expr]" = []
            value: "ast.expr | None" = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None:
                continue
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    cls_ref = _value_class_ref(model, info, value, ann_by_param)
                    if cls_ref is not None:
                        out[target.attr] = cls_ref
    cache[key] = out
    return out


def _module_has_segments(name: str, pairs: "tuple[tuple[str, ...], ...]") -> bool:
    parts = name.split(".")
    for pair in pairs:
        n = len(pair)
        if any(tuple(parts[i : i + n]) == pair for i in range(len(parts) - n + 1)):
            return True
    return False


def _resolve_callee(
    model: ProgramModel, info: ModuleInfo, func: "FunctionInfo | None", node: ast.AST
) -> "tuple[str | None, str | None]":
    """``(callee_ref, dotted_chain)`` for a call/reference expression."""
    chain = info.ctx.resolve_call_chain(node)
    if not chain:
        return None, None
    dotted = ".".join(chain)
    # self.method() / cls.method() inside a class body.
    if func is not None and func.class_name and chain[0] in ("self", "cls"):
        if len(chain) == 2:
            target = info.functions.get(f"{func.class_name}.{chain[1]}")
            if target is not None:
                return target.ref, dotted
        elif len(chain) == 3:
            # ``self.<attr>.<method>()`` on an attribute whose class was
            # inferred from ``__init__`` (constructor call or annotation).
            cls_ref = _self_attr_types(model, info, func.class_name).get(chain[1])
            if cls_ref is not None:
                mod, _, cls = cls_ref.partition(":")
                target_info = model.modules.get(mod)
                target = (
                    target_info.functions.get(f"{cls}.{chain[2]}")
                    if target_info is not None
                    else None
                )
                if target is not None:
                    return target.ref, dotted
        return None, dotted
    resolution = model.resolve_in_module(info, node)
    if resolution is None:
        return None, dotted
    if resolution.kind == "function" and resolution.function is not None:
        return resolution.function.ref, dotted
    if resolution.kind == "class":
        if resolution.function is not None:  # the __init__ method
            return resolution.function.ref, dotted
        return None, dotted
    return None, dotted


@dataclass
class CallGraph:
    """Resolved static call edges over a :class:`ProgramModel`."""

    model: ProgramModel
    edges: "dict[str, tuple[str, ...]]" = field(default_factory=dict)
    sites: "dict[str, list[CallSite]]" = field(default_factory=dict)
    #: caller -> callee -> the set of edge kinds observed between them.
    edge_kinds: "dict[str, dict[str, set[str]]]" = field(default_factory=dict)

    def callees(self, ref: str) -> "tuple[str, ...]":
        """Resolved direct callees of the function *ref*."""
        return self.edges.get(ref, ())

    def callees_via(self, ref: str, kinds: "frozenset[str] | set[str]") -> "tuple[str, ...]":
        """Direct callees connected by at least one edge of the given kinds."""
        by_callee = self.edge_kinds.get(ref, {})
        return tuple(sorted(c for c, ks in by_callee.items() if ks & kinds))

    def reachable(self, roots: "set[str] | list[str]") -> "set[str]":
        """Functions transitively reachable from *roots* (roots included)."""
        seen: "set[str]" = set()
        stack = [r for r in sorted(roots) if r in self.edges or self.model.function(r)]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(c for c in self.callees(current) if c not in seen)
        return seen

    def path(self, roots: "set[str] | list[str]", target: str) -> "list[str] | None":
        """A shortest root->target call chain, or None if unreachable."""
        from collections import deque

        parents: "dict[str, str | None]" = {r: None for r in sorted(roots)}
        queue = deque(sorted(roots))
        while queue:
            current = queue.popleft()
            if current == target:
                chain = [current]
                while parents[chain[-1]] is not None:
                    chain.append(parents[chain[-1]])  # type: ignore[arg-type]
                return list(reversed(chain))
            for callee in self.callees(current):
                if callee not in parents:
                    parents[callee] = current
                    queue.append(callee)
        return None


def build_call_graph(model: ProgramModel) -> CallGraph:
    """Extract every resolvable call edge from the program model."""
    graph = CallGraph(model)
    for func in model.functions():
        info = model.modules[func.module]
        sites: "list[CallSite]" = []
        targets: "set[str]" = set()
        kinds: "dict[str, set[str]]" = {}

        def note(site: CallSite) -> None:
            sites.append(site)
            if site.callee is not None:
                targets.add(site.callee)
                kinds.setdefault(site.callee, set()).add(site.kind)

        spawn_inner: "set[int]" = set()
        for node in ast.walk(func.node):
            if isinstance(node, ast.Call):
                for inner in _spawn_wrapped_calls(info, node):
                    spawn_inner.add(id(inner))
        for node in ast.walk(func.node):
            if not isinstance(node, ast.Call):
                continue
            in_async = in_async_context(info, node)
            callee, dotted = _resolve_callee(model, info, func, node.func)
            if id(node) in spawn_inner:
                kind = "spawn"
            elif isinstance(info.ctx.parent(node), ast.Await):
                kind = "await"
            else:
                kind = "call"
            note(
                CallSite(
                    caller=func.ref, node=node, callee=callee, dotted=dotted,
                    kind=kind, in_async=in_async,
                )
            )
            for target_expr in _executor_target_exprs(info, node):
                ecallee, edotted = _resolve_callee(model, info, func, target_expr)
                if ecallee is not None:
                    note(
                        CallSite(
                            caller=func.ref, node=node, callee=ecallee,
                            dotted=edotted, kind="executor", in_async=in_async,
                        )
                    )
        graph.sites[func.ref] = sites
        graph.edges[func.ref] = tuple(sorted(targets))
        graph.edge_kinds[func.ref] = kinds
    return graph


@dataclass
class EntryPoints:
    """The root sets the analysis walks from, by entry kind."""

    cli: "set[str]" = field(default_factory=set)
    pool: "set[str]" = field(default_factory=set)
    engine: "set[str]" = field(default_factory=set)

    def all(self) -> "set[str]":
        """Every root across the three kinds."""
        return self.cli | self.pool | self.engine


#: Constructor names marking a function as a pool dispatcher: anything it
#: lets escape as a value may run on the worker side of a fork.
_POOL_MARKERS = frozenset({"Job", "Process"})


def _escaped_function_refs(
    model: ProgramModel, info: ModuleInfo, func: FunctionInfo
) -> "set[str]":
    """Function references that escape *func* as values (not direct calls).

    A reference passed as ``Job(fn=...)``, ``Process(target=...)``, or
    packed into a ``worker_setup`` payload tuple is *escaped*: it will be
    invoked later, typically on the worker side of the pool.  Direct call
    positions are excluded — those are ordinary edges of the call graph.
    """
    call_positions = {
        id(node.func) for node in ast.walk(func.node) if isinstance(node, ast.Call)
    }
    # Exclude sub-expressions of call positions (``a.b`` inside ``a.b()``).
    refs: "set[str]" = set()
    for node in ast.walk(func.node):
        if not isinstance(node, (ast.Name, ast.Attribute)):
            continue
        if id(node) in call_positions:
            continue
        parent = info.ctx.parent(node)
        if isinstance(parent, ast.Attribute) or (
            isinstance(parent, ast.Call) and id(parent.func) == id(node)
        ):
            continue
        callee, _ = _resolve_callee(model, info, func, node)
        if callee is not None:
            refs.add(callee)
    return refs


def _is_pool_dispatcher(info: ModuleInfo, func: FunctionInfo) -> bool:
    """Whether *func* hands work to the evaluation pool.

    True when the body constructs a ``Job``/``Process`` or touches a
    ``worker_setup`` attribute — the three ways code crosses the fork
    boundary in this codebase.
    """
    for node in ast.walk(func.node):
        if isinstance(node, ast.Call):
            target = node.func
            name = (
                target.attr
                if isinstance(target, ast.Attribute)
                else target.id if isinstance(target, ast.Name) else None
            )
            if name in _POOL_MARKERS:
                return True
        if isinstance(node, ast.Attribute) and node.attr == "worker_setup":
            return True
    return False


def find_entry_points(model: ProgramModel) -> EntryPoints:
    """Discover the CLI / pool / engine roots of the program."""
    entries = EntryPoints()
    for func in model.functions():
        parts = func.module.split(".")
        if parts[-1] == "cli" and (
            func.name == "main" or func.name.startswith("_cmd_")
        ):
            entries.cli.add(func.ref)
        if _module_has_segments(func.module, (("sim", "engine"),)):
            public_func = func.class_name is None and not func.name.startswith("_")
            public_method = (
                func.class_name is not None
                and not func.class_name.startswith("_")
                and not func.name.startswith("_")
            )
            if public_func or public_method:
                entries.engine.add(func.ref)
        if func.name.startswith("_worker"):
            entries.pool.add(func.ref)
        info = model.modules[func.module]
        if _is_pool_dispatcher(info, func):
            # Over-approximate: every function value escaping a dispatcher
            # is treated as worker-side reachable.  For a fork-safety
            # analysis, too many roots is safe; too few is a missed race.
            entries.pool |= _escaped_function_refs(model, info, func)
    return entries


# ---------------------------------------------------------------------------
# Execution-context classification (loop / thread / worker)
# ---------------------------------------------------------------------------

#: Edge kinds that keep execution on the event loop.  ``executor`` is the
#: one hop that leaves it — that exclusion is the whole point.
_LOOP_EDGE_KINDS = frozenset({"call", "await", "spawn"})


@dataclass
class ExecutionContexts:
    """Which concurrency layer(s) each function may execute on.

    The three sets are not mutually exclusive: a helper called both from a
    coroutine and from an executor-shipped function is loop *and* thread
    context, and the rules must hold it to the stricter obligations of
    each.  Functions in none of the sets only run synchronously before any
    loop exists (import time, plain CLI paths).
    """

    #: Runs on the asyncio event loop: every ``async def`` plus every sync
    #: function reachable from one without an executor hop.
    loop: "set[str]" = field(default_factory=set)
    #: Runs on an executor thread: targets of ``to_thread`` /
    #: ``run_in_executor`` / ``submit`` edges, closed over sync calls.
    thread: "set[str]" = field(default_factory=set)
    #: Runs on the fork/spawn worker side of the evaluation pool.
    worker: "set[str]" = field(default_factory=set)
    #: BFS parents of the loop propagation, for shortest-chain reporting.
    loop_parents: "dict[str, str | None]" = field(default_factory=dict)

    def kinds_of(self, ref: str) -> "tuple[str, ...]":
        """The context labels of *ref*, deterministically ordered."""
        labels = []
        if ref in self.loop:
            labels.append("loop")
        if ref in self.thread:
            labels.append("thread")
        if ref in self.worker:
            labels.append("worker")
        return tuple(labels)

    def loop_path(self, ref: str) -> "list[str]":
        """The propagation chain that put *ref* in loop context."""
        if ref not in self.loop_parents:
            return [ref]
        chain = [ref]
        while self.loop_parents.get(chain[-1]) is not None:
            parent = self.loop_parents[chain[-1]]
            assert parent is not None
            chain.append(parent)
        return list(reversed(chain))


def classify_contexts(
    model: ProgramModel,
    graph: CallGraph,
    *,
    pool_reachable: "set[str] | None" = None,
) -> ExecutionContexts:
    """Propagate loop/thread/worker context over the kinded call graph.

    Loop context seeds at every ``async def`` (coroutines only ever run on
    a loop) and propagates through call/await/spawn edges; an ``executor``
    edge is the one hop that breaks the propagation and instead seeds
    *thread* context on its target, which then closes over plain sync
    calls.  Call sites inside a *nested* coroutine of an otherwise-sync
    function (``async def serve()`` inside ``_cmd_serve``) also seed loop
    context — nested defs fold into their parent in the symbol table, so
    without this the CLI's serve path would be invisible.  Worker context
    is the pool-reachable set, unchanged from PR 5.
    """
    ctxs = ExecutionContexts(worker=set(pool_reachable or ()))
    queue: "deque[str]" = deque()
    for func in model.functions():
        if isinstance(func.node, ast.AsyncFunctionDef):
            ctxs.loop.add(func.ref)
            ctxs.loop_parents.setdefault(func.ref, None)
            queue.append(func.ref)
    for caller in sorted(graph.sites):
        if caller in ctxs.loop:
            continue
        for site in graph.sites[caller]:
            if (
                site.in_async
                and site.kind != "executor"
                and site.callee is not None
                and site.callee not in ctxs.loop
            ):
                ctxs.loop.add(site.callee)
                ctxs.loop_parents.setdefault(caller, None)
                ctxs.loop_parents[site.callee] = caller
                queue.append(site.callee)
    while queue:
        current = queue.popleft()
        for callee in graph.callees_via(current, _LOOP_EDGE_KINDS):
            if callee not in ctxs.loop:
                ctxs.loop.add(callee)
                ctxs.loop_parents[callee] = current
                queue.append(callee)

    tqueue: "deque[str]" = deque()
    for caller in sorted(graph.sites):
        for site in graph.sites[caller]:
            if site.kind == "executor" and site.callee is not None:
                if site.callee not in ctxs.thread:
                    ctxs.thread.add(site.callee)
                    tqueue.append(site.callee)
    while tqueue:
        current = tqueue.popleft()
        for callee in graph.callees_via(current, frozenset({"call"})):
            if callee not in ctxs.thread:
                ctxs.thread.add(callee)
                tqueue.append(callee)
    return ctxs
