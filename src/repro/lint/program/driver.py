"""The whole-program lint driver: build once, run every rule pack.

Builds the :class:`~repro.lint.program.symbols.ProgramModel` (through a
shared :class:`~repro.lint.engine.ASTCache`, so a combined per-file +
program run parses each file exactly once), derives the call graph,
entry points and effect analysis, runs every registered
:class:`~repro.lint.program.rules.ProgramRule`, then applies the two
filters:

* **suppressions** — a ``# repro: noqa[RULE] -- why`` on the finding's
  line suppresses it *only when justified*; an unjustified noqa is
  ignored and separately reported as SUP001 (eager failure);
* **baseline** — findings whose fingerprint appears in the baseline are
  split out as ``baselined`` (reported, but not gating); SUP001 and
  SYNTAX findings never match the baseline.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.engine import ASTCache, Severity, Violation
from repro.lint.program.baseline import (
    NEVER_BASELINED,
    Baseline,
    BaselineEntry,
    fingerprint_violation,
)
from repro.lint.program.callgraph import (
    EntryPoints,
    build_call_graph,
    classify_contexts,
    find_entry_points,
)
from repro.lint.program.dataflow import EffectAnalysis
from repro.lint.program.locks import LockAnalysis
from repro.lint.program.rules import PROGRAM_RULES, ProgramContext
from repro.lint.program.symbols import ProgramModel, build_program

__all__ = ["ProgramLintResult", "run_program_lint"]


@dataclass
class ProgramLintResult:
    """The outcome of one whole-program lint run."""

    #: Gating findings: not suppressed, not baselined.
    violations: "list[Violation]"
    #: Findings matched by the baseline file (reported, non-gating).
    baselined: "list[Violation]"
    files_checked: int
    entries: EntryPoints = field(default_factory=EntryPoints)
    suppressed: int = 0
    suppressed_justified: int = 0
    suppressed_unjustified: int = 0
    parses: int = 0
    parse_reuses: int = 0
    #: Fingerprinted entries for every baselineable finding (what
    #: ``--update-baseline`` writes).
    baseline_entries: "list[BaselineEntry]" = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the run found no gating violations."""
        return not self.violations

    def summary(self) -> "dict[str, object]":
        """Summary numbers — the single source every reporter renders."""
        return {
            "violations": len(self.violations),
            "baselined": len(self.baselined),
            "files_checked": self.files_checked,
            "suppressed": self.suppressed,
            "suppressed_justified": self.suppressed_justified,
            "suppressed_unjustified": self.suppressed_unjustified,
            "parses": self.parses,
            "parse_reuses": self.parse_reuses,
            "entry_points": {
                "cli": len(self.entries.cli),
                "pool": len(self.entries.pool),
                "engine": len(self.entries.engine),
            },
            "ok": self.ok,
        }


def _select_program_rules(rules: "Sequence[str] | None") -> "list[str]":
    if rules is None:
        return sorted(PROGRAM_RULES)
    selected = []
    for name in rules:
        if name not in PROGRAM_RULES:
            known = ", ".join(sorted(PROGRAM_RULES))
            raise KeyError(
                f"unknown program rule {name!r} (known program rules: {known})"
            )
        selected.append(name)
    return selected


def _line_text(model: ProgramModel, path_index: "dict[str, str]", v: Violation) -> str:
    module_name = path_index.get(v.path)
    if module_name is None:
        return ""
    lines = model.modules[module_name].ctx.lines
    if 1 <= v.line <= len(lines):
        return lines[v.line - 1]
    return ""


def run_program_lint(
    paths: "Sequence[str | Path]",
    *,
    rules: "Sequence[str] | None" = None,
    cache: "ASTCache | None" = None,
    baseline: "Baseline | None" = None,
) -> ProgramLintResult:
    """Run the whole-program rule packs over every file under *paths*."""
    selected = _select_program_rules(rules)
    cache = cache if cache is not None else ASTCache()
    parses_before, hits_before = cache.parses, cache.hits
    model = build_program(paths, cache=cache)
    graph = build_call_graph(model)
    entries = find_entry_points(model)
    effects = EffectAnalysis(model, graph)
    pool_reachable = graph.reachable(entries.pool)
    pctx = ProgramContext(
        model=model,
        graph=graph,
        entries=entries,
        effects=effects,
        pool_reachable=pool_reachable,
        contexts=classify_contexts(model, graph, pool_reachable=pool_reachable),
        locks=LockAnalysis(model, graph),
    )

    found: "list[Violation]" = []
    for rel, error in sorted(model.parse_failures.items()):
        found.append(
            Violation(
                path=rel,
                line=1,
                col=0,
                rule="SYNTAX",
                severity=Severity.ERROR,
                message=f"could not parse: {error}",
            )
        )
    for name in selected:
        found.extend(PROGRAM_RULES[name].check(pctx))
    found.sort()

    # -- suppression filter (justified-only for program rules) ---------------
    path_index = {info.path: name for name, info in model.modules.items()}
    kept: "list[Violation]" = []
    suppressed = justified = unjustified = 0
    for violation in found:
        module_name = path_index.get(violation.path)
        ctx = model.modules[module_name].ctx if module_name is not None else None
        if ctx is not None and violation.rule in ctx.noqa.get(violation.line, set()):
            if ctx.is_suppression_justified(violation.line):
                suppressed += 1
                justified += 1
                continue
            # Unjustified: the suppression is ignored (finding kept) and
            # SUP001 has already reported the hygiene failure itself.
            unjustified += 1
        kept.append(violation)

    # -- baseline split ------------------------------------------------------
    baseline = baseline if baseline is not None else Baseline()
    occurrences: "dict[tuple[str, str, str], int]" = {}
    gating: "list[Violation]" = []
    grandfathered: "list[Violation]" = []
    entries_out: "list[BaselineEntry]" = []
    for violation in kept:
        if violation.rule in NEVER_BASELINED or violation.rule == "SYNTAX":
            gating.append(violation)
            continue
        text = _line_text(model, path_index, violation)
        key = (violation.rule, violation.path, text.strip())
        ordinal = occurrences.get(key, 0)
        occurrences[key] = ordinal + 1
        fingerprint = fingerprint_violation(violation, text, ordinal)
        entries_out.append(
            BaselineEntry(
                fingerprint=fingerprint,
                rule=violation.rule,
                path=violation.path,
                line=violation.line,
                message=violation.message,
            )
        )
        if fingerprint in baseline:
            grandfathered.append(violation)
        else:
            gating.append(violation)

    return ProgramLintResult(
        violations=gating,
        baselined=grandfathered,
        files_checked=len(model.modules) + len(model.parse_failures),
        entries=entries,
        suppressed=suppressed,
        suppressed_justified=justified,
        suppressed_unjustified=unjustified,
        parses=cache.parses - parses_before,
        parse_reuses=cache.hits - hits_before,
        baseline_entries=entries_out,
    )
