"""Intraprocedural CFG, reaching definitions, and side-effect inference.

Three layers, each feeding the rule packs:

* :func:`build_cfg` — a statement-granularity control-flow graph per
  function (``if``/``while``/``for``/``try``/``with``; ``break``,
  ``continue``, ``return`` and ``raise`` terminate their block);
* :func:`reaching_definitions` — the classic forward dataflow over that
  CFG: for every statement, which definitions of each local name may
  reach it.  FLOW001 uses this to track RNG provenance through local
  assignments instead of guessing from names;
* :class:`EffectAnalysis` — per-function *direct* side effects (module
  global writes, ambient-state reads, I/O, process-environment mutation,
  and synchronous may-block calls for the event-loop analysis)
  plus the call-graph walk that makes purity *transitive*: a measurement
  producer is rejected if any statically reachable callee is effectful.

Unresolved calls (dynamic dispatch, external libraries) contribute no
effect: the analysis is deliberately under-approximate, and each rule
documents that bias.  NumPy and the stdlib math surface are effect-free
for our purposes; the curated ban lists below cover the effectful parts
that matter to measurement trust (ambient RNG reseeding, filesystem and
environment writes, stdout).
"""

from __future__ import annotations

import ast
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field

from repro.lint.program.callgraph import CallGraph, in_async_context
from repro.lint.program.symbols import (
    FunctionInfo,
    GlobalVar,
    ModuleInfo,
    ProgramModel,
)

__all__ = [
    "Block",
    "CFG",
    "build_cfg",
    "Definition",
    "ReachingDefs",
    "reaching_definitions",
    "Effect",
    "FunctionEffects",
    "EffectAnalysis",
]


# ---------------------------------------------------------------------------
# Control-flow graph
# ---------------------------------------------------------------------------

@dataclass
class Block:
    """A straight-line run of statements with successor block indices."""

    index: int
    stmts: "list[ast.stmt]" = field(default_factory=list)
    succs: "list[int]" = field(default_factory=list)


@dataclass
class CFG:
    """Statement-granularity control-flow graph of one function body."""

    blocks: "list[Block]" = field(default_factory=list)

    @property
    def entry(self) -> int:
        """Index of the entry block (always 0)."""
        return 0

    def statements(self) -> "Iterator[ast.stmt]":
        """Every statement, in block order."""
        for block in self.blocks:
            yield from block.stmts


class _CFGBuilder:
    def __init__(self) -> None:
        self.cfg = CFG()
        self._loop_stack: "list[tuple[int, list[int]]]" = []  # (head, break-sources)

    def new_block(self) -> Block:
        block = Block(index=len(self.cfg.blocks))
        self.cfg.blocks.append(block)
        return block

    def link(self, src: Block, dst: Block) -> None:
        if dst.index not in src.succs:
            src.succs.append(dst.index)

    def build(self, body: "list[ast.stmt]") -> CFG:
        entry = self.new_block()
        exit_block = self._body(body, entry)
        # A dedicated exit block keeps "fell off the end" well-defined.
        final = self.new_block()
        if exit_block is not None:
            self.link(exit_block, final)
        return self.cfg

    def _body(self, body: "list[ast.stmt]", current: "Block | None") -> "Block | None":
        """Append *body* after *current*; returns the fall-through block."""
        for stmt in body:
            if current is None:  # unreachable code after return/raise/...
                current = self.new_block()
            current = self._statement(stmt, current)
        return current

    def _statement(self, stmt: ast.stmt, current: Block) -> "Block | None":
        if isinstance(stmt, ast.If):
            current.stmts.append(stmt)
            after = self.new_block()
            then_entry = self.new_block()
            self.link(current, then_entry)
            then_exit = self._body(stmt.body, then_entry)
            if then_exit is not None:
                self.link(then_exit, after)
            if stmt.orelse:
                else_entry = self.new_block()
                self.link(current, else_entry)
                else_exit = self._body(stmt.orelse, else_entry)
                if else_exit is not None:
                    self.link(else_exit, after)
            else:
                self.link(current, after)
            return after
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            # The loop header gets its own block so the back edge merges
            # body definitions into it (and through it, into the exit).
            header = self.new_block()
            header.stmts.append(stmt)  # For target is a def here
            self.link(current, header)
            body_entry = self.new_block()
            after = self.new_block()
            self.link(header, body_entry)
            self.link(header, after)  # zero-iteration / loop-exit path
            self._loop_stack.append((header.index, []))
            body_exit = self._body(stmt.body, body_entry)
            if body_exit is not None:
                self.link(body_exit, self.cfg.blocks[header.index])
            _, breaks = self._loop_stack.pop()
            for src in breaks:
                self.link(self.cfg.blocks[src], after)
            if stmt.orelse:
                else_exit = self._body(stmt.orelse, after)
                return else_exit
            return after
        if isinstance(stmt, (ast.Try,)):
            current.stmts.append(stmt)
            after = self.new_block()
            body_exit = self._body(stmt.body, self._linked_block(current))
            if body_exit is not None:
                self.link(body_exit, after)
            for handler in stmt.handlers:
                handler_exit = self._body(handler.body, self._linked_block(current))
                if handler_exit is not None:
                    self.link(handler_exit, after)
            if stmt.orelse:
                orelse_exit = self._body(stmt.orelse, self._linked_block(current))
                if orelse_exit is not None:
                    self.link(orelse_exit, after)
            if stmt.finalbody:
                final_exit = self._body(stmt.finalbody, after)
                return final_exit
            return after
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            current.stmts.append(stmt)  # optional_vars are defs here
            body_exit = self._body(stmt.body, self._linked_block(current))
            return body_exit
        if isinstance(stmt, (ast.Return, ast.Raise)):
            current.stmts.append(stmt)
            return None
        if isinstance(stmt, ast.Break):
            current.stmts.append(stmt)
            if self._loop_stack:
                self._loop_stack[-1][1].append(current.index)
            return None
        if isinstance(stmt, ast.Continue):
            current.stmts.append(stmt)
            if self._loop_stack:
                self.link(current, self.cfg.blocks[self._loop_stack[-1][0]])
            return None
        current.stmts.append(stmt)
        return current

    def _linked_block(self, predecessor: Block) -> Block:
        block = self.new_block()
        self.link(predecessor, block)
        return block


def build_cfg(func: "ast.FunctionDef | ast.AsyncFunctionDef") -> CFG:
    """The statement-level CFG of *func*'s body."""
    return _CFGBuilder().build(func.body)


# ---------------------------------------------------------------------------
# Reaching definitions
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Definition:
    """One definition of a local name."""

    name: str
    lineno: int
    #: The defining statement.
    stmt_id: int
    #: The assigned value when syntactically evident (None for loop
    #: targets, tuple unpacking, with-as bindings, parameters, ...).
    value: "ast.expr | None"

    @staticmethod
    def parameter(name: str) -> "Definition":
        """The implicit entry definition of a function parameter."""
        return Definition(name=name, lineno=0, stmt_id=-1, value=None)


def _defs_of_statement(stmt: ast.stmt) -> "list[Definition]":
    """The definitions a single statement generates."""
    defs: "list[Definition]" = []

    def bind(target: ast.expr, value: "ast.expr | None") -> None:
        if isinstance(target, ast.Name):
            defs.append(
                Definition(
                    name=target.id, lineno=stmt.lineno, stmt_id=id(stmt), value=value
                )
            )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                bind(elt, None)
        elif isinstance(target, ast.Starred):
            bind(target.value, None)

    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            bind(target, stmt.value)
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        bind(stmt.target, stmt.value)
    elif isinstance(stmt, ast.AugAssign):
        bind(stmt.target, None)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        bind(stmt.target, None)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                bind(item.optional_vars, None)
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        defs.append(
            Definition(name=stmt.name, lineno=stmt.lineno, stmt_id=id(stmt), value=None)
        )
    elif isinstance(stmt, ast.Import):
        for alias in stmt.names:
            defs.append(
                Definition(
                    name=(alias.asname or alias.name.split(".")[0]),
                    lineno=stmt.lineno,
                    stmt_id=id(stmt),
                    value=None,
                )
            )
    elif isinstance(stmt, ast.ImportFrom):
        for alias in stmt.names:
            defs.append(
                Definition(
                    name=(alias.asname or alias.name),
                    lineno=stmt.lineno,
                    stmt_id=id(stmt),
                    value=None,
                )
            )
    return defs


@dataclass
class ReachingDefs:
    """Reaching-definition sets of one function, queryable per statement."""

    cfg: CFG
    #: id(stmt) -> {name -> definitions that may reach the statement}.
    before: "dict[int, dict[str, frozenset[Definition]]]"

    def at(self, stmt: ast.stmt, name: str) -> "frozenset[Definition]":
        """Definitions of *name* that may reach *stmt* (empty if unknown)."""
        return self.before.get(id(stmt), {}).get(name, frozenset())


def reaching_definitions(
    func: "ast.FunctionDef | ast.AsyncFunctionDef",
) -> ReachingDefs:
    """Forward may-analysis over the function's CFG (worklist fixpoint)."""
    cfg = build_cfg(func)
    params = [
        *(a.arg for a in func.args.posonlyargs),
        *(a.arg for a in func.args.args),
        *(a.arg for a in func.args.kwonlyargs),
    ]
    if func.args.vararg:
        params.append(func.args.vararg.arg)
    if func.args.kwarg:
        params.append(func.args.kwarg.arg)
    entry_state: "dict[str, frozenset[Definition]]" = {
        p: frozenset({Definition.parameter(p)}) for p in params
    }

    def transfer(
        state: "dict[str, frozenset[Definition]]", stmt: ast.stmt
    ) -> "dict[str, frozenset[Definition]]":
        new_defs = _defs_of_statement(stmt)
        if not new_defs:
            return state
        out = dict(state)
        for definition in new_defs:  # strong update: a def kills prior defs
            out[definition.name] = frozenset({definition})
        return out

    def merge(
        a: "dict[str, frozenset[Definition]]", b: "dict[str, frozenset[Definition]]"
    ) -> "dict[str, frozenset[Definition]]":
        out = dict(a)
        for name, defs in b.items():
            out[name] = out.get(name, frozenset()) | defs
        return out

    n = len(cfg.blocks)
    block_in: "list[dict[str, frozenset[Definition]]]" = [{} for _ in range(n)]
    block_in[cfg.entry] = dict(entry_state)
    preds: "list[list[int]]" = [[] for _ in range(n)]
    for block in cfg.blocks:
        for succ in block.succs:
            preds[succ].append(block.index)

    changed = True
    while changed:
        changed = False
        for block in cfg.blocks:
            state = dict(entry_state) if block.index == cfg.entry else {}
            for p in preds[block.index]:
                out_p = block_in[p]
                for stmt in cfg.blocks[p].stmts:
                    out_p = transfer(out_p, stmt)
                state = merge(state, out_p)
            if state != block_in[block.index]:
                block_in[block.index] = state
                changed = True

    before: "dict[int, dict[str, frozenset[Definition]]]" = {}
    for block in cfg.blocks:
        state = block_in[block.index]
        for stmt in block.stmts:
            before[id(stmt)] = state
            state = transfer(state, stmt)
    return ReachingDefs(cfg=cfg, before=before)


# ---------------------------------------------------------------------------
# Side-effect (purity) inference
# ---------------------------------------------------------------------------

@dataclass
class Effect:
    """One direct side effect observed in a function body."""

    kind: str  # "global-write" | "io" | "env" | "ambient-rng" | "blocking"
    node: ast.AST
    detail: str
    target: "GlobalVar | None" = None
    #: Whether the effect sits under a ``with <...lock...>:`` guard.
    lock_guarded: bool = False
    #: Whether the effect is lexically inside an ``async def`` — directly
    #: on the event loop, even when the enclosing indexed function is sync
    #: (nested coroutines fold into their parent).
    in_async: bool = False


@dataclass
class FunctionEffects:
    """Direct effects and ambient reads of one function."""

    ref: str
    effects: "list[Effect]" = field(default_factory=list)
    #: Module-level globals this function reads, with the reading node.
    global_reads: "list[tuple[GlobalVar, ast.AST]]" = field(default_factory=list)


#: Builtin calls that are I/O no matter the receiver.
_IO_BUILTINS = frozenset({"print", "open", "input", "breakpoint"})

#: Dotted-chain prefixes whose calls mutate the process or filesystem.
_IO_CHAIN_PREFIXES = (
    ("os", "remove"), ("os", "unlink"), ("os", "rename"), ("os", "mkdir"),
    ("os", "makedirs"), ("os", "rmdir"), ("os", "chdir"), ("os", "putenv"),
    ("shutil",), ("subprocess",),
    ("sys", "stdout"), ("sys", "stderr"), ("sys", "exit"),
    ("json", "dump"),
)

#: Calls that reseed or mutate ambient process-global RNG state.
_AMBIENT_RNG_CHAINS = (
    ("random", "seed"), ("random", "setstate"),
    ("numpy", "random", "seed"), ("numpy", "random", "set_state"),
)

#: Method names that mutate their receiver in place.
_MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault", "pop",
    "popitem", "remove", "discard", "clear", "sort", "reverse",
})

#: Builtin calls that block the calling thread on the filesystem or tty.
_BLOCKING_BUILTINS = frozenset({"open", "input"})

#: Dotted-chain prefixes whose *synchronous* calls park the calling
#: thread: sleeps, raw sockets, subprocesses, filesystem trees.
_BLOCKING_CHAIN_PREFIXES = (
    ("time", "sleep"), ("socket",), ("subprocess",), ("select",),
    ("shutil",), ("os", "fsync"), ("urllib", "request"), ("requests",),
)

#: Method names that block their caller: pathlib disk IO, thread/pool/
#: queue joins, and blocking lock acquisition.  ``.join()`` counts only
#: with zero arguments — ``",".join(parts)`` and ``os.path.join(a, b)``
#: are string/path operations, and ``thread.join(timeout)`` is bounded.
_BLOCKING_METHODS = frozenset({
    "read_text", "write_text", "read_bytes", "write_bytes", "open",
    "join", "acquire",
})


def _blocking_detail(info: ModuleInfo, node: ast.Call) -> "str | None":
    """Why *node* may block its thread, or None when it cannot."""
    if isinstance(node.func, ast.Name) and node.func.id in _BLOCKING_BUILTINS:
        return f"{node.func.id}()"
    chain = info.ctx.resolve_call_chain(node.func)
    if chain and _chain_matches(chain, _BLOCKING_CHAIN_PREFIXES):
        return f"{'.'.join(chain)}()"
    if isinstance(node.func, ast.Attribute) and node.func.attr in _BLOCKING_METHODS:
        if node.func.attr == "join" and (node.args or node.keywords):
            return None
        return f".{node.func.attr}()"
    return None


def _chain_matches(chain: "list[str]", prefixes: "tuple[tuple[str, ...], ...]") -> bool:
    return any(tuple(chain[: len(p)]) == p for p in prefixes)


def _local_names(func: "ast.FunctionDef | ast.AsyncFunctionDef") -> "set[str]":
    """Names bound in *func*'s own frame (parameters + any assignment)."""
    names = {
        *(a.arg for a in func.args.posonlyargs),
        *(a.arg for a in func.args.args),
        *(a.arg for a in func.args.kwonlyargs),
    }
    if func.args.vararg:
        names.add(func.args.vararg.arg)
    if func.args.kwarg:
        names.add(func.args.kwarg.arg)
    declared_global: "set[str]" = set()
    for node in ast.walk(func):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            declared_global.update(node.names)
        for definition in _defs_of_statement(node) if isinstance(node, ast.stmt) else ():
            names.add(definition.name)
        if isinstance(node, ast.comprehension) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
        if isinstance(node, ast.NamedExpr) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
    return names - declared_global


def _is_lock_guarded(info: ModuleInfo, node: ast.AST) -> bool:
    """Whether *node* executes under a ``with`` whose context names a lock."""
    for ancestor in info.ctx.ancestors(node):
        if isinstance(ancestor, (ast.With, ast.AsyncWith)):
            for item in ancestor.items:
                if "lock" in ast.unparse(item.context_expr).lower():
                    return True
    return False


class EffectAnalysis:
    """Direct + transitive side-effect facts over the whole program."""

    def __init__(self, model: ProgramModel, graph: CallGraph) -> None:
        self.model = model
        self.graph = graph
        self._effects: "dict[str, FunctionEffects]" = {}
        for func in model.functions():
            self._effects[func.ref] = self._analyze(func)
        #: Globals mutated by *some function* (as opposed to import-time
        #: top-level population): the "runtime-mutated" ambient-state set.
        self.runtime_mutated: "set[str]" = {
            effect.target.ref
            for fe in self._effects.values()
            for effect in fe.effects
            if effect.kind == "global-write" and effect.target is not None
        }

    def effects_of(self, ref: str) -> FunctionEffects:
        """The direct effects of function *ref* (empty if unknown)."""
        return self._effects.get(ref, FunctionEffects(ref=ref))

    # -- transitive queries --------------------------------------------------
    def first_effect_path(
        self,
        start: str,
        *,
        sanctioned: "Callable[[str], bool] | None" = None,
        include: "Callable[[Effect], bool] | None" = None,
    ) -> "tuple[list[str], Effect] | None":
        """BFS from *start*: the shortest call chain to a direct effect.

        ``sanctioned(module_name)`` exempts whole modules (their effects
        and their callees are skipped); ``include(effect)`` narrows which
        effect kinds count.  Returns ``(call chain, effect)`` or ``None``
        when every reachable function is clean.
        """
        from collections import deque

        parents: "dict[str, str | None]" = {start: None}
        queue = deque([start])
        while queue:
            current = queue.popleft()
            func = self.model.function(current)
            if func is not None and sanctioned is not None and sanctioned(func.module):
                continue
            for effect in self.effects_of(current).effects:
                if include is not None and not include(effect):
                    continue
                chain = [current]
                while parents[chain[-1]] is not None:
                    chain.append(parents[chain[-1]])  # type: ignore[arg-type]
                return list(reversed(chain)), effect
            for callee in self.graph.callees(current):
                if callee not in parents:
                    parents[callee] = current
                    queue.append(callee)
        return None

    def first_read_path(
        self,
        start: str,
        *,
        sanctioned: "Callable[[str], bool] | None" = None,
        reads: "Callable[[GlobalVar], bool] | None" = None,
    ) -> "tuple[list[str], GlobalVar, ast.AST] | None":
        """Like :meth:`first_effect_path`, for ambient global *reads*."""
        from collections import deque

        parents: "dict[str, str | None]" = {start: None}
        queue = deque([start])
        while queue:
            current = queue.popleft()
            func = self.model.function(current)
            if func is not None and sanctioned is not None and sanctioned(func.module):
                continue
            for gvar, node in self.effects_of(current).global_reads:
                if reads is not None and not reads(gvar):
                    continue
                chain = [current]
                while parents[chain[-1]] is not None:
                    chain.append(parents[chain[-1]])  # type: ignore[arg-type]
                return list(reversed(chain)), gvar, node
            for callee in self.graph.callees(current):
                if callee not in parents:
                    parents[callee] = current
                    queue.append(callee)
        return None

    # -- per-function direct analysis ---------------------------------------
    def _analyze(self, func: FunctionInfo) -> FunctionEffects:
        info = self.model.modules[func.module]
        out = FunctionEffects(ref=func.ref)
        locals_ = _local_names(func.node)
        declared_global: "set[str]" = set()
        for node in ast.walk(func.node):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)

        def global_of(name: str) -> "GlobalVar | None":
            return info.globals.get(name)

        def resolve_global(node: ast.AST) -> "GlobalVar | None":
            """A Name/Attribute chain resolving to some module's global."""
            if isinstance(node, ast.Name):
                if node.id in locals_ and node.id not in declared_global:
                    return None
                return global_of(node.id)
            resolution = self.model.resolve_in_module(info, node)
            if resolution is not None and resolution.kind == "global":
                return resolution.global_var
            return None

        def record_write(node: ast.AST, base: ast.AST, how: str) -> None:
            gvar = resolve_global(base)
            if gvar is None:
                return
            out.effects.append(
                Effect(
                    kind="global-write",
                    node=node,
                    detail=f"{how} module-level {gvar.module}.{gvar.name}",
                    target=gvar,
                    lock_guarded=_is_lock_guarded(info, node),
                    in_async=in_async_context(info, node),
                )
            )

        for node in ast.walk(func.node):
            # -- writes ------------------------------------------------------
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name) and target.id in declared_global:
                        record_write(node, target, "rebinds")
                    elif isinstance(target, ast.Subscript):
                        record_write(node, target.value, "writes into")
                    elif isinstance(target, ast.Attribute):
                        record_write(node, target.value, "writes attribute on")
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Subscript):
                        record_write(node, target.value, "deletes from")
                    elif isinstance(target, ast.Name) and target.id in declared_global:
                        record_write(node, target, "deletes")
            # -- calls -------------------------------------------------------
            elif isinstance(node, ast.Call):
                blocking = _blocking_detail(info, node)
                if blocking is not None and not isinstance(
                    info.ctx.parent(node), ast.Await
                ):
                    # An awaited call is cooperative by construction (the
                    # coroutine yields); only the synchronous form can park
                    # the calling thread.  This is also what keeps ASYNC001
                    # and CON003 from ever reporting the same line.
                    out.effects.append(
                        Effect(
                            kind="blocking",
                            node=node,
                            detail=f"synchronous {blocking} may block",
                            in_async=in_async_context(info, node),
                        )
                    )
                if isinstance(node.func, ast.Name) and node.func.id in _IO_BUILTINS:
                    out.effects.append(
                        Effect(kind="io", node=node, detail=f"calls {node.func.id}()")
                    )
                    continue
                chain = info.ctx.resolve_call_chain(node.func)
                if chain:
                    if _chain_matches(chain, _AMBIENT_RNG_CHAINS):
                        out.effects.append(
                            Effect(
                                kind="ambient-rng",
                                node=node,
                                detail=f"mutates ambient RNG state via {'.'.join(chain)}()",
                            )
                        )
                        continue
                    if _chain_matches(chain, _IO_CHAIN_PREFIXES):
                        out.effects.append(
                            Effect(
                                kind="io",
                                node=node,
                                detail=f"calls {'.'.join(chain)}()",
                            )
                        )
                        continue
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _MUTATING_METHODS
                ):
                    record_write(node, node.func.value, f".{node.func.attr}() on")
            # -- environment -------------------------------------------------
            elif isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Store):
                chain = info.ctx.resolve_call_chain(node.value)
                if chain and tuple(chain[:2]) == ("os", "environ"):
                    out.effects.append(
                        Effect(
                            kind="env", node=node, detail="writes os.environ"
                        )
                    )
            # -- ambient reads ----------------------------------------------
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                if node.id not in locals_ or node.id in declared_global:
                    gvar = global_of(node.id)
                    if gvar is not None:
                        out.global_reads.append((gvar, node))
            elif isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
                parent = info.ctx.parent(node)
                if isinstance(parent, ast.Attribute):
                    continue  # only resolve the full chain once
                resolution = self.model.resolve_in_module(info, node)
                if resolution is not None and resolution.kind == "global":
                    if resolution.global_var is not None:
                        out.global_reads.append((resolution.global_var, node))
        return out
