"""Value-range and unit abstract interpretation over the program CFG.

The model's numerical identities (Eqs. 2/3, 9-11, cycle conservation)
are implemented four times — reference loop, fast path, batch SoA
kernel, tier-0 surrogate — and until now the only guard against
divergence was dynamic (bit-identity matrices, hypothesis properties).
This module is the static tier for that bug class, in three layers:

* an **interval domain** (:class:`Interval`) in the Cousot & Cousot
  style: per-variable ``[lo, hi]`` bounds with open/closed endpoints,
  widening once a block has been visited :data:`WIDEN_AFTER` times and
  a single narrowing sweep after the fixpoint.  Sign and non-negativity
  are derived predicates of the interval, not a separate lattice;
* a **unit-kind lattice** (cycles / instructions / accesses / bytes /
  ratio, plus the polymorphic ``scalar`` for literals and the ``?``
  unknown) seeded from a name-convention table that encodes the
  ``@satisfies`` contract vocabulary, ``MachineConfig`` and report
  field names.  Unit arithmetic is deliberately coarse: mismatches are
  reported only when *both* operands have a concrete dimension;
* an **abstract interpreter** over the PR 5 CFG (`dataflow.build_cfg`)
  that refines branches from ``if``/``assert`` guards, ``min``/``max``/
  ``np.clip`` clamp idioms and truthiness tests, tracks copy aliases
  and *expression fingerprints* (so ``if i >= rob: ... w[i - rob]``
  proves the index non-negative even though the domain is
  non-relational), and propagates return intervals interprocedurally
  along the call graph for :data:`VALUE_SCOPE` packages.

On top of the interpreter, :func:`extract_model_constants` unifies
literal model constants per symbolic role across sibling
implementations (scalar/fast engine statistics vs. the tier-0
surrogate) for the DRIFT001 rule.

Everything here is *advisory-sound by construction*: the abstract value
of an expression always contains every concrete value the expression
can take under the modeled semantics (the hypothesis soundness test in
``tests/lint/test_program_values.py`` fuzzes exactly this claim).
Unmodeled constructs (comprehensions, nested defs, ``**``/bit ops,
NaN) evaluate to ⊤, never to something narrower.
"""

from __future__ import annotations

import ast
import math
from dataclasses import dataclass, field, replace

from repro.lint.program.callgraph import (
    CallGraph,
    _module_has_segments,
    _resolve_callee,
)
from repro.lint.program.dataflow import CFG, build_cfg
from repro.lint.program.symbols import FunctionInfo, ModuleInfo, ProgramModel

__all__ = [
    "Interval",
    "AbstractValue",
    "TOP_VALUE",
    "UNIT_UNKNOWN",
    "UNIT_SCALAR",
    "UNIT_RATIO",
    "UNIT_CYCLES",
    "UNIT_INSTRUCTIONS",
    "UNIT_ACCESSES",
    "UNIT_BYTES",
    "unit_of_name",
    "unit_add",
    "unit_mul",
    "unit_div",
    "units_clash",
    "DivisionSite",
    "SubscriptSite",
    "UnitClash",
    "FunctionResult",
    "ValueAnalysis",
    "VALUE_SCOPE",
    "ConstantSite",
    "ConstantRole",
    "MODEL_CONSTANT_ROLES",
    "RoleReading",
    "extract_model_constants",
]

_INF = math.inf

#: Widen a block's in-state once it has been re-joined this many times.
WIDEN_AFTER = 3

#: Interprocedural rounds: round 1 computes leaf summaries, round 2
#: propagates them one level up (the model call chains are shallow;
#: deeper nests simply stay at ⊤, which is sound).
SUMMARY_ROUNDS = 2

#: Packages the value analysis covers (segment match, fixture-friendly).
VALUE_SCOPE: "tuple[tuple[str, ...], ...]" = (("sim",), ("core",), ("analysis",))


# ---------------------------------------------------------------------------
# Interval domain
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Interval:
    """A closed/open real interval ``[lo, hi]``; ⊤ is ``[-inf, inf]``.

    Open endpoint flags exist so branch refinement can distinguish
    ``x > 0`` from ``x >= 0`` — arithmetic drops openness (closing an
    endpoint only ever *widens* the interval, so this stays sound).
    """

    lo: float = -_INF
    hi: float = _INF
    lo_open: bool = False
    hi_open: bool = False

    # -- predicates --------------------------------------------------------
    @property
    def is_top(self) -> bool:
        return self.lo == -_INF and self.hi == _INF

    def contains(self, v: float) -> bool:
        if v < self.lo or (v == self.lo and self.lo_open):
            return False
        if v > self.hi or (v == self.hi and self.hi_open):
            return False
        return True

    def contains_zero(self) -> bool:
        return self.contains(0.0)

    @property
    def nonneg(self) -> bool:
        """Provably ``>= 0``."""
        return self.lo >= 0

    @property
    def positive(self) -> bool:
        """Provably ``> 0``."""
        return self.lo > 0 or (self.lo == 0 and self.lo_open)

    # -- lattice -----------------------------------------------------------
    def join(self, other: "Interval") -> "Interval":
        if self.lo < other.lo:
            lo, lo_open = self.lo, self.lo_open
        elif other.lo < self.lo:
            lo, lo_open = other.lo, other.lo_open
        else:
            lo, lo_open = self.lo, self.lo_open and other.lo_open
        if self.hi > other.hi:
            hi, hi_open = self.hi, self.hi_open
        elif other.hi > self.hi:
            hi, hi_open = other.hi, other.hi_open
        else:
            hi, hi_open = self.hi, self.hi_open and other.hi_open
        return Interval(lo, hi, lo_open, hi_open)

    def meet(self, other: "Interval") -> "Interval | None":
        """Intersection; ``None`` when empty (infeasible state)."""
        if self.lo > other.lo:
            lo, lo_open = self.lo, self.lo_open
        elif other.lo > self.lo:
            lo, lo_open = other.lo, other.lo_open
        else:
            lo, lo_open = self.lo, self.lo_open or other.lo_open
        if self.hi < other.hi:
            hi, hi_open = self.hi, self.hi_open
        elif other.hi < self.hi:
            hi, hi_open = other.hi, other.hi_open
        else:
            hi, hi_open = self.hi, self.hi_open or other.hi_open
        if lo > hi or (lo == hi and (lo_open or hi_open)):
            return None
        return Interval(lo, hi, lo_open, hi_open)

    def widen(self, newer: "Interval") -> "Interval":
        """Classic interval widening: unstable bounds jump to infinity.

        Stable bounds keep their endpoints (and stay open only when both
        sides agree they are open — openness must never tighten here).
        """
        if newer.lo < self.lo:
            lo, lo_open = -_INF, False
        else:
            lo = self.lo
            lo_open = self.lo_open and (newer.lo > self.lo or newer.lo_open)
        if newer.hi > self.hi:
            hi, hi_open = _INF, False
        else:
            hi = self.hi
            hi_open = self.hi_open and (newer.hi < self.hi or newer.hi_open)
        return Interval(lo, hi, lo_open, hi_open)

    # -- arithmetic --------------------------------------------------------
    def add(self, other: "Interval") -> "Interval":
        return Interval(_safe(self.lo + other.lo, -_INF), _safe(self.hi + other.hi, _INF))

    def sub(self, other: "Interval") -> "Interval":
        return Interval(_safe(self.lo - other.hi, -_INF), _safe(self.hi - other.lo, _INF))

    def neg(self) -> "Interval":
        return Interval(-self.hi, -self.lo, self.hi_open, self.lo_open)

    def mul(self, other: "Interval") -> "Interval":
        cands = [
            _mul_bound(a, b)
            for a in (self.lo, self.hi)
            for b in (other.lo, other.hi)
        ]
        return Interval(min(cands), max(cands))

    def div(self, other: "Interval") -> "Interval":
        if other.contains_zero():
            return TOP_INTERVAL
        cands = []
        for a in (self.lo, self.hi):
            for b in (other.lo, other.hi):
                if b == 0:
                    continue
                q = a / b if not (math.isinf(a) and math.isinf(b)) else 0.0
                if math.isinf(a) and not math.isinf(b):
                    q = a if b > 0 else -a
                cands.append(q)
        if not cands:
            return TOP_INTERVAL
        return Interval(min(cands), max(cands))

    def floordiv(self, other: "Interval") -> "Interval":
        q = self.div(other)
        return Interval(_safe(q.lo - 1, -_INF), _safe(q.hi + 1, _INF))

    def mod(self, other: "Interval") -> "Interval":
        if other.positive:
            return Interval(0, other.hi)
        if other.hi < 0:
            return Interval(other.lo, 0)
        return TOP_INTERVAL

    def min_with(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), min(self.hi, other.hi))

    def max_with(self, other: "Interval") -> "Interval":
        return Interval(max(self.lo, other.lo), max(self.hi, other.hi))

    def abs(self) -> "Interval":
        if self.lo >= 0:
            return Interval(self.lo, self.hi, self.lo_open, self.hi_open)
        if self.hi <= 0:
            return self.neg()
        return Interval(0, max(-self.lo, self.hi))

    def bounds(self) -> "list[float | str]":
        """JSON-safe ``[lo, hi]`` (infinities become strings)."""
        return [_jsonable(self.lo), _jsonable(self.hi)]

    def __str__(self) -> str:
        lo = "(" if self.lo_open else "["
        hi = ")" if self.hi_open else "]"
        return f"{lo}{_pretty(self.lo)}, {_pretty(self.hi)}{hi}"


TOP_INTERVAL = Interval()


def _safe(v: float, default: float) -> float:
    return default if math.isnan(v) else v


def _mul_bound(a: float, b: float) -> float:
    if a == 0 or b == 0:
        return 0.0
    return a * b


def _jsonable(v: float) -> "float | str":
    if v == _INF:
        return "inf"
    if v == -_INF:
        return "-inf"
    return v


def _pretty(v: float) -> str:
    if v == _INF:
        return "inf"
    if v == -_INF:
        return "-inf"
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return f"{v:g}"


def point(v: float) -> Interval:
    return Interval(v, v)


# ---------------------------------------------------------------------------
# Unit-kind lattice
# ---------------------------------------------------------------------------

UNIT_UNKNOWN = "?"
#: Dimensionless-polymorphic: numeric literals and folded constants.
UNIT_SCALAR = "scalar"
UNIT_RATIO = "ratio"
UNIT_CYCLES = "cycles"
UNIT_INSTRUCTIONS = "instructions"
UNIT_ACCESSES = "accesses"
UNIT_BYTES = "bytes"

#: Units with a concrete dimension (clashes are only reported between two
#: of these; ``scalar`` and ``?`` are compatible with everything).
DIMENSIONED = frozenset(
    {UNIT_RATIO, UNIT_CYCLES, UNIT_INSTRUCTIONS, UNIT_ACCESSES, UNIT_BYTES}
)

#: Report/contract field names with a known unit — the vocabulary of the
#: ``@satisfies`` contract table (lpmr_definitions, report_bounds, ...)
#: and the LPMRReport/SurrogatePrediction constructors.
FIELD_UNITS: "dict[str, str]" = {
    "lpmr1": UNIT_RATIO,
    "lpmr2": UNIT_RATIO,
    "mr1": UNIT_RATIO,
    "mr2": UNIT_RATIO,
    "f_mem": UNIT_RATIO,
    "overlap_ratio_cm": UNIT_RATIO,
    "eta_combined": UNIT_RATIO,
    "camat1": UNIT_CYCLES,
    "camat2": UNIT_CYCLES,
    "cpi": UNIT_CYCLES,
    "cpi_exe": UNIT_CYCLES,
    "hit_time1": UNIT_CYCLES,
}


def unit_of_name(name: str) -> str:
    """Unit kind from the model's naming conventions (``?`` if none).

    The table mirrors the ``@satisfies`` contract vocabulary and the
    MachineConfig / report field names; it is intentionally narrow —
    a wrong ``?`` only loses precision, a wrong concrete unit creates
    false clashes.
    """
    n = name.lower().lstrip("_")
    if n in FIELD_UNITS:
        return FIELD_UNITS[n]
    # ratios / fractions / probabilities
    if "ratio" in n or "fraction" in n or "frac" in n:
        return UNIT_RATIO
    # NOTE: bare "overlap*" is deliberately absent — `overlapped` in the
    # measurement kernels is a cycle count; only overlap_*ratio* names
    # (caught above) are ratios.
    if n.startswith(("lpmr", "mr", "eta", "rho")):
        return UNIT_RATIO
    if n.endswith(("_rate", "_prob", "_probability")):
        return UNIT_RATIO
    # cycle-valued latencies and times
    if "cycle" in n:
        return UNIT_CYCLES
    if "latency" in n or "delay" in n or "hit_time" in n:
        return UNIT_CYCLES
    if n.startswith(("cpi", "camat", "amp", "stall")):
        return UNIT_CYCLES
    # event counts
    if n in ("n_instructions", "instructions") or n.endswith("_instructions"):
        return UNIT_INSTRUCTIONS
    if n in ("n_accesses", "accesses", "n_mem_ops") or n.endswith("_accesses"):
        return UNIT_ACCESSES
    if n.endswith("_bytes") or n in ("size_bytes", "line_size"):
        return UNIT_BYTES
    return UNIT_UNKNOWN


def unit_join(a: str, b: str) -> str:
    """Control-flow merge of two units."""
    if a == b:
        return a
    if a == UNIT_SCALAR:
        return b
    if b == UNIT_SCALAR:
        return a
    return UNIT_UNKNOWN


def units_clash(a: str, b: str) -> bool:
    """True when adding/comparing *a* and *b* mixes two concrete dimensions."""
    return a in DIMENSIONED and b in DIMENSIONED and a != b


def unit_add(a: str, b: str) -> str:
    """Result unit of ``a + b`` / ``a - b`` (clash reported separately)."""
    if units_clash(a, b):
        return UNIT_UNKNOWN
    if a == b:
        return a
    if a == UNIT_SCALAR:
        return b
    if b == UNIT_SCALAR:
        return a
    return UNIT_UNKNOWN


def unit_mul(a: str, b: str) -> str:
    if a == UNIT_SCALAR:
        return b
    if b == UNIT_SCALAR:
        return a
    if a == UNIT_RATIO and b == UNIT_RATIO:
        return UNIT_RATIO
    if a == UNIT_RATIO and b in DIMENSIONED:
        return b
    if b == UNIT_RATIO and a in DIMENSIONED:
        return a
    return UNIT_UNKNOWN


def unit_div(num: str, den: str) -> str:
    if den == UNIT_SCALAR:
        return num
    if num in DIMENSIONED and num == den:
        return UNIT_RATIO
    if den == UNIT_RATIO and num in DIMENSIONED:
        return num
    return UNIT_UNKNOWN


# ---------------------------------------------------------------------------
# Abstract values and environments
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AbstractValue:
    interval: Interval = TOP_INTERVAL
    unit: str = UNIT_UNKNOWN

    def join(self, other: "AbstractValue") -> "AbstractValue":
        return AbstractValue(
            self.interval.join(other.interval), unit_join(self.unit, other.unit)
        )


TOP_VALUE = AbstractValue()


@dataclass
class Env:
    """Abstract state: variable values + expression-fingerprint facts.

    ``constraints`` keys are normalized expression fingerprints (names
    resolved through ``aliases``), which is how the non-relational
    domain still proves ``i - rob >= 0`` after ``if i >= rob:`` — the
    guard and the index normalize to the same key.
    """

    vars: "dict[str, AbstractValue]" = field(default_factory=dict)
    constraints: "dict[str, Interval]" = field(default_factory=dict)
    aliases: "dict[str, str]" = field(default_factory=dict)

    def copy(self) -> "Env":
        return Env(dict(self.vars), dict(self.constraints), dict(self.aliases))

    def canonical(self, name: str) -> str:
        seen = set()
        while name in self.aliases and name not in seen:
            seen.add(name)
            name = self.aliases[name]
        return name

    def kill(self, name: str) -> None:
        """Invalidate every fact mentioning *name* (it was reassigned)."""
        tag = f"n:{name};"
        self.constraints = {
            k: v for k, v in self.constraints.items() if tag not in k
        }
        self.aliases = {
            a: c for a, c in self.aliases.items() if a != name and c != name
        }

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Env)
            and self.vars == other.vars
            and self.constraints == other.constraints
            and self.aliases == other.aliases
        )


def env_join(a: "Env | None", b: "Env | None") -> "Env | None":
    if a is None:
        return b.copy() if b is not None else None
    if b is None:
        return a.copy()
    vars_ = {
        n: a.vars[n].join(b.vars[n]) for n in a.vars.keys() & b.vars.keys()
    }
    constraints = {}
    for k in a.constraints.keys() & b.constraints.keys():
        constraints[k] = a.constraints[k].join(b.constraints[k])
    aliases = {
        n: a.aliases[n]
        for n in a.aliases.keys() & b.aliases.keys()
        if a.aliases[n] == b.aliases[n]
    }
    return Env(vars_, constraints, aliases)


def env_widen(old: Env, new: Env) -> Env:
    vars_ = {}
    for n in old.vars.keys() & new.vars.keys():
        ov, nv = old.vars[n], new.vars[n]
        vars_[n] = AbstractValue(ov.interval.widen(nv.interval), unit_join(ov.unit, nv.unit))
    constraints = {
        k: old.constraints[k].widen(new.constraints[k])
        for k in old.constraints.keys() & new.constraints.keys()
    }
    aliases = {
        n: old.aliases[n]
        for n in old.aliases.keys() & new.aliases.keys()
        if old.aliases[n] == new.aliases[n]
    }
    return Env(vars_, constraints, aliases)


def _expr_key(expr: ast.AST, env: Env) -> "str | None":
    """Canonical fingerprint of a pure arithmetic expression (or None)."""
    if isinstance(expr, ast.Name):
        return f"n:{env.canonical(expr.id)};"
    if isinstance(expr, ast.Constant) and isinstance(expr.value, (int, float)):
        return f"c:{float(expr.value)}"
    if isinstance(expr, ast.Attribute):
        base = _expr_key(expr.value, env)
        return None if base is None else f"a:{base}.{expr.attr};"
    if isinstance(expr, ast.BinOp):
        op = _BINOP_NAMES.get(type(expr.op))
        if op is None:
            return None
        left = _expr_key(expr.left, env)
        right = _expr_key(expr.right, env)
        if left is None or right is None:
            return None
        return f"b:{op}({left},{right})"
    if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.USub):
        inner = _expr_key(expr.operand, env)
        return None if inner is None else f"u:neg({inner})"
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id in _PURE_BUILTINS
        and not expr.keywords
    ):
        parts = [_expr_key(a, env) for a in expr.args]
        if all(p is not None for p in parts):
            return f"f:{expr.func.id}({','.join(parts)})"  # type: ignore[arg-type]
    return None


#: Effect-free builtins worth fingerprinting: a guard on ``len(xs)`` or
#: ``abs(x)`` then refines later uses of the same call expression.
_PURE_BUILTINS = frozenset({"abs", "len", "min", "max", "float", "int"})

_BINOP_NAMES = {
    ast.Add: "add",
    ast.Sub: "sub",
    ast.Mult: "mul",
    ast.Div: "div",
    ast.FloorDiv: "fdiv",
    ast.Mod: "mod",
}


# ---------------------------------------------------------------------------
# Recorded sites (consumed by the VAL/UNIT rule packs)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DivisionSite:
    node: ast.AST
    denom: AbstractValue
    denom_text: str


@dataclass(frozen=True)
class SubscriptSite:
    node: ast.AST
    index: AbstractValue
    index_text: str
    #: ``a[-1]`` style deliberate from-the-end indexing.
    literal_negative: bool
    #: Index is ``x - y`` with both operands provably non-negative — the
    #: PR-8 hetero-ROB gather shape, suspicious even when the interval
    #: itself is ⊤.
    sub_nonneg_pair: bool


@dataclass(frozen=True)
class UnitClash:
    node: ast.AST
    kind: str  # "add" | "sub" | "compare" | "minmax" | "return-field"
    left: str
    right: str
    text: str
    field_name: "str | None" = None


@dataclass
class FunctionResult:
    func: FunctionInfo
    returns: AbstractValue = TOP_VALUE
    divisions: "list[DivisionSite]" = field(default_factory=list)
    subscripts: "list[SubscriptSite]" = field(default_factory=list)
    clashes: "list[UnitClash]" = field(default_factory=list)


def _text(node: ast.AST, limit: int = 60) -> str:
    try:
        out = ast.unparse(node)
    except ValueError:  # pragma: no cover - unparse is total on parsed trees
        out = "<expr>"
    return out if len(out) <= limit else out[: limit - 3] + "..."


# ---------------------------------------------------------------------------
# The interpreter
# ---------------------------------------------------------------------------

class _Interp:
    """One function's abstract interpretation (fixpoint + record sweep)."""

    def __init__(
        self,
        model: ProgramModel,
        info: ModuleInfo,
        func: FunctionInfo,
        summaries: "dict[str, AbstractValue]",
    ) -> None:
        self.model = model
        self.info = info
        self.func = func
        self.summaries = summaries
        self.result = FunctionResult(func)
        self._recording = False
        self._ret: "AbstractValue | None" = None

    # -- entry -------------------------------------------------------------
    def run(self, record: bool) -> FunctionResult:
        cfg = build_cfg(self.func.node)
        in_states: "list[Env | None]" = [None] * len(cfg.blocks)
        in_states[cfg.entry] = self._seed_env()
        visits = [0] * len(cfg.blocks)
        work = [cfg.entry]
        budget = 30 * len(cfg.blocks) + 200
        while work and budget > 0:
            budget -= 1
            idx = work.pop()
            env = in_states[idx]
            if env is None:
                continue
            for succ, out in self._block_outs(cfg, idx, env):
                joined = env_join(in_states[succ], out)
                if joined == in_states[succ]:
                    continue
                visits[succ] += 1
                if visits[succ] > WIDEN_AFTER and in_states[succ] is not None:
                    joined = env_widen(in_states[succ], joined)
                    if joined == in_states[succ]:
                        continue
                in_states[succ] = joined
                if succ not in work:
                    work.append(succ)
        # One narrowing sweep: recompute each in-state from predecessor
        # outs without widening (standard decreasing iteration).
        preds: "dict[int, list[int]]" = {}
        for block in cfg.blocks:
            for succ in block.succs:
                preds.setdefault(succ, []).append(block.index)
        for block in cfg.blocks:
            if block.index == cfg.entry:
                continue
            narrowed: "Env | None" = None
            for p in preds.get(block.index, []):
                env = in_states[p]
                if env is None:
                    continue
                for succ, out in self._block_outs(cfg, p, env):
                    if succ == block.index:
                        narrowed = env_join(narrowed, out)
            if narrowed is not None:
                in_states[block.index] = narrowed
        # Record sweep over the final states.
        self._ret = None
        self._recording = record
        for block in cfg.blocks:
            env = in_states[block.index]
            if env is None:
                continue
            env = env.copy()
            for stmt in block.stmts:
                self._transfer(env, stmt)
        self._recording = False
        self.result.returns = self._ret if self._ret is not None else TOP_VALUE
        if self.result.returns.unit == UNIT_UNKNOWN:
            fallback = unit_of_name(self.func.name)
            if fallback != UNIT_UNKNOWN:
                self.result.returns = replace(self.result.returns, unit=fallback)
        return self.result

    def _seed_env(self) -> Env:
        env = Env()
        args = self.func.node.args
        for arg in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            if arg.arg in ("self", "cls"):
                continue
            env.vars[arg.arg] = AbstractValue(TOP_INTERVAL, unit_of_name(arg.arg))
        return env

    # -- block transfer ----------------------------------------------------
    def _block_outs(
        self, cfg: CFG, idx: int, env: Env
    ) -> "list[tuple[int, Env]]":
        """Out-edges of a block with branch refinement applied."""
        block = cfg.blocks[idx]
        env = env.copy()
        for stmt in block.stmts[:-1]:
            self._transfer(env, stmt)
        last = block.stmts[-1] if block.stmts else None
        outs: "list[tuple[int, Env]]" = []
        if isinstance(last, (ast.If, ast.While)) and len(block.succs) >= 2:
            self._transfer(env, last)
            # build_cfg links the true/body edge first, the false/after
            # edge second — the refinement below relies on that order.
            true_env = self._refine(env.copy(), last.test, True)
            false_env = self._refine(env.copy(), last.test, False)
            if true_env is not None:
                outs.append((block.succs[0], true_env))
            if false_env is not None:
                outs.append((block.succs[1], false_env))
            for succ in block.succs[2:]:  # break edges etc.
                outs.append((succ, env.copy()))
            return outs
        if last is not None:
            self._transfer(env, last)
        if isinstance(last, ast.For) and len(block.succs) >= 1:
            body_env = env.copy()
            self._bind_for_target(body_env, last)
            self._refine_range_nonempty(body_env, last.iter)
            outs.append((block.succs[0], body_env))
            for succ in block.succs[1:]:
                outs.append((succ, env.copy()))
            return outs
        return [(succ, env.copy()) for succ in block.succs]

    # -- statement transfer ------------------------------------------------
    def _transfer(self, env: Env, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            value = self._eval(env, stmt.value)
            for target in stmt.targets:
                self._assign(env, target, stmt.value, value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                value = self._eval(env, stmt.value)
                self._assign(env, stmt.target, stmt.value, value)
        elif isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name):
                load = ast.copy_location(
                    ast.Name(id=stmt.target.id, ctx=ast.Load()), stmt.target
                )
                combined = ast.copy_location(
                    ast.BinOp(left=load, op=stmt.op, right=stmt.value), stmt
                )
                value = self._eval(env, combined)
                env.kill(stmt.target.id)
                env.vars[stmt.target.id] = self._with_name_unit(
                    stmt.target.id, value
                )
            else:
                self._eval(env, stmt.value)
                if isinstance(stmt.target, ast.Subscript):
                    self._eval(env, stmt.target)
        elif isinstance(stmt, (ast.If, ast.While)):
            self._eval(env, stmt.test)
        elif isinstance(stmt, ast.For):
            self._eval(env, stmt.iter)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                value = self._eval(env, stmt.value)
                self._check_producer_return(env, stmt.value)
            else:
                value = TOP_VALUE
            self._ret = value if self._ret is None else self._ret.join(value)
        elif isinstance(stmt, ast.Expr):
            self._eval(env, stmt.value)
        elif isinstance(stmt, ast.Assert):
            self._eval(env, stmt.test)
            refined = self._refine(env, stmt.test, True)
            if refined is not None and refined is not env:
                env.vars = refined.vars
                env.constraints = refined.constraints
                env.aliases = refined.aliases
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._eval(env, item.context_expr)
                if isinstance(item.optional_vars, ast.Name):
                    env.kill(item.optional_vars.id)
                    env.vars[item.optional_vars.id] = TOP_VALUE
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(env, stmt.exc)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.kill(target.id)
                    env.vars.pop(target.id, None)
        # FunctionDef/ClassDef/Import/...: no value effect on locals.

    def _assign(
        self, env: Env, target: ast.expr, src: ast.expr, value: AbstractValue
    ) -> None:
        if isinstance(target, ast.Name):
            env.kill(target.id)
            env.vars[target.id] = self._with_name_unit(target.id, value)
            if isinstance(src, ast.Name):
                env.aliases[target.id] = env.canonical(src.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                if isinstance(elt, ast.Name):
                    env.kill(elt.id)
                    env.vars[elt.id] = AbstractValue(
                        TOP_INTERVAL, unit_of_name(elt.id)
                    )
        elif isinstance(target, ast.Subscript):
            self._eval(env, target)
        # attribute targets: heap state, out of scope.

    def _with_name_unit(self, name: str, value: AbstractValue) -> AbstractValue:
        """Fall back to the naming convention when inference came up empty."""
        if value.unit in (UNIT_UNKNOWN, UNIT_SCALAR):
            named = unit_of_name(name)
            if named != UNIT_UNKNOWN:
                return replace(value, unit=named)
        return value

    def _bind_for_target(self, env: Env, stmt: ast.For) -> None:
        value = self._range_value(env, stmt.iter)
        if isinstance(stmt.target, ast.Name):
            env.kill(stmt.target.id)
            env.vars[stmt.target.id] = value
        elif isinstance(stmt.target, (ast.Tuple, ast.List)):
            for elt in stmt.target.elts:
                if isinstance(elt, ast.Name):
                    env.kill(elt.id)
                    env.vars[elt.id] = TOP_VALUE

    def _refine_range_nonempty(self, env: Env, iter_expr: ast.expr) -> None:
        """Inside ``for _ in range(e):`` the body implies ``e >= 1``."""
        if not (
            isinstance(iter_expr, ast.Call)
            and isinstance(iter_expr.func, ast.Name)
            and iter_expr.func.id == "range"
            and len(iter_expr.args) == 1
        ):
            return
        stop = iter_expr.args[0]
        # A provably-empty range leaves env untouched (_apply refuses an
        # empty meet); the body is unreachable then anyway.
        self._apply(env, stop, Interval(1, _INF))

    def _range_value(self, env: Env, iter_expr: ast.expr) -> AbstractValue:
        if not (
            isinstance(iter_expr, ast.Call)
            and isinstance(iter_expr.func, ast.Name)
            and iter_expr.func.id == "range"
            and iter_expr.args
        ):
            return TOP_VALUE
        args = [self._eval(env, a, quiet=True) for a in iter_expr.args]
        if len(args) == 1:
            return AbstractValue(Interval(0, args[0].interval.hi), UNIT_UNKNOWN)
        lo = args[0].interval
        hi = args[1].interval
        if len(args) == 2 or args[2].interval.positive:
            return AbstractValue(Interval(lo.lo, hi.hi), UNIT_UNKNOWN)
        low = min(lo.lo, hi.lo)
        high = max(lo.hi, hi.hi)
        return AbstractValue(Interval(low, high), UNIT_UNKNOWN)

    # -- expressions -------------------------------------------------------
    def _eval(
        self, env: Env, expr: ast.expr, quiet: bool = False
    ) -> AbstractValue:
        record = self._recording and not quiet
        value = self._eval_inner(env, expr, record)
        key = _expr_key(expr, env)
        if key is not None and key in env.constraints:
            met = value.interval.meet(env.constraints[key])
            if met is not None:
                value = replace(value, interval=met)
        return value

    def _eval_inner(
        self, env: Env, expr: ast.expr, record: bool
    ) -> AbstractValue:
        if isinstance(expr, ast.Constant):
            v = expr.value
            if isinstance(v, bool):
                return AbstractValue(point(float(v)), UNIT_SCALAR)
            if isinstance(v, (int, float)):
                return AbstractValue(point(float(v)), UNIT_SCALAR)
            return TOP_VALUE
        if isinstance(expr, ast.Name):
            if expr.id in env.vars:
                return env.vars[expr.id]
            folded = self._fold_global(expr.id)
            if folded is not None:
                return AbstractValue(point(folded), UNIT_SCALAR)
            return AbstractValue(TOP_INTERVAL, unit_of_name(expr.id))
        if isinstance(expr, ast.Attribute):
            self._eval(env, expr.value, quiet=True)
            chain = self.info.ctx.resolve_call_chain(expr)
            if chain and len(chain) == 2 and chain[0] in ("math", "numpy"):
                if chain[1] == "inf":
                    return AbstractValue(point(_INF), UNIT_SCALAR)
                if chain[1] == "pi":
                    return AbstractValue(point(math.pi), UNIT_SCALAR)
            return AbstractValue(TOP_INTERVAL, unit_of_name(expr.attr))
        if isinstance(expr, ast.BinOp):
            return self._eval_binop(env, expr, record)
        if isinstance(expr, ast.UnaryOp):
            inner = self._eval(env, expr.operand, quiet=not record)
            if isinstance(expr.op, ast.USub):
                return AbstractValue(inner.interval.neg(), inner.unit)
            if isinstance(expr.op, ast.UAdd):
                return inner
            if isinstance(expr.op, ast.Not):
                return AbstractValue(Interval(0, 1), UNIT_SCALAR)
            return TOP_VALUE
        if isinstance(expr, ast.BoolOp):
            parts = [self._eval(env, v, quiet=not record) for v in expr.values]
            out = parts[0]
            for part in parts[1:]:
                out = out.join(part)
            # `x or 0.0` / `x and y` can also yield a falsy left operand.
            return out
        if isinstance(expr, ast.Compare):
            left = self._eval(env, expr.left, quiet=not record)
            prev = left
            prev_node: ast.expr = expr.left
            for op, comparator in zip(expr.ops, expr.comparators):
                cur = self._eval(env, comparator, quiet=not record)
                if record and isinstance(
                    op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)
                ) and units_clash(prev.unit, cur.unit):
                    self.result.clashes.append(
                        UnitClash(
                            node=expr,
                            kind="compare",
                            left=prev.unit,
                            right=cur.unit,
                            text=_text(expr),
                        )
                    )
                prev, prev_node = cur, comparator
            return AbstractValue(Interval(0, 1), UNIT_SCALAR)
        if isinstance(expr, ast.IfExp):
            self._eval(env, expr.test, quiet=not record)
            true_env = self._refine(env.copy(), expr.test, True) or env
            false_env = self._refine(env.copy(), expr.test, False) or env
            body = self._eval(true_env, expr.body, quiet=not record)
            orelse = self._eval(false_env, expr.orelse, quiet=not record)
            return body.join(orelse)
        if isinstance(expr, ast.Call):
            return self._eval_call(env, expr, record)
        if isinstance(expr, ast.Subscript):
            return self._eval_subscript(env, expr, record)
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            for elt in expr.elts:
                self._eval(env, elt, quiet=not record)
            return TOP_VALUE
        if isinstance(expr, ast.Dict):
            for v in expr.values:
                if v is not None:
                    self._eval(env, v, quiet=not record)
            return TOP_VALUE
        if isinstance(expr, ast.Starred):
            return self._eval(env, expr.value, quiet=not record)
        if isinstance(expr, (ast.JoinedStr, ast.FormattedValue)):
            return TOP_VALUE
        # comprehensions, lambdas, await, yield...: unmodeled => ⊤.
        return TOP_VALUE

    def _eval_binop(
        self, env: Env, expr: ast.BinOp, record: bool
    ) -> AbstractValue:
        left = self._eval(env, expr.left, quiet=not record)
        right = self._eval(env, expr.right, quiet=not record)
        li, ri = left.interval, right.interval
        if isinstance(expr.op, (ast.Add, ast.Sub)):
            if record and units_clash(left.unit, right.unit):
                self.result.clashes.append(
                    UnitClash(
                        node=expr,
                        kind="add" if isinstance(expr.op, ast.Add) else "sub",
                        left=left.unit,
                        right=right.unit,
                        text=_text(expr),
                    )
                )
            iv = li.add(ri) if isinstance(expr.op, ast.Add) else li.sub(ri)
            return AbstractValue(iv, unit_add(left.unit, right.unit))
        if isinstance(expr.op, ast.Mult):
            return AbstractValue(li.mul(ri), unit_mul(left.unit, right.unit))
        if isinstance(expr.op, (ast.Div, ast.FloorDiv, ast.Mod)):
            if record:
                self.result.divisions.append(
                    DivisionSite(
                        node=expr, denom=right, denom_text=_text(expr.right)
                    )
                )
            if isinstance(expr.op, ast.Div):
                iv = li.div(ri)
            elif isinstance(expr.op, ast.FloorDiv):
                iv = li.floordiv(ri)
            else:
                iv = li.mod(ri)
            unit = (
                unit_div(left.unit, right.unit)
                if not isinstance(expr.op, ast.Mod)
                else left.unit
            )
            return AbstractValue(iv, unit)
        if isinstance(expr.op, ast.Pow):
            if (
                isinstance(expr.right, ast.Constant)
                and isinstance(expr.right.value, int)
                and expr.right.value % 2 == 0
            ):
                return AbstractValue(Interval(0, _INF), UNIT_UNKNOWN)
            return TOP_VALUE
        return TOP_VALUE  # bit ops, matmul, ...

    def _eval_subscript(
        self, env: Env, expr: ast.Subscript, record: bool
    ) -> AbstractValue:
        self._eval(env, expr.value, quiet=True)
        indexes: "list[ast.expr]" = []
        sl = expr.slice
        if isinstance(sl, ast.Tuple):
            indexes = [e for e in sl.elts if not isinstance(e, ast.Slice)]
        elif isinstance(sl, ast.Slice):
            for bound in (sl.lower, sl.upper, sl.step):
                if bound is not None:
                    self._eval(env, bound, quiet=True)
        else:
            indexes = [sl]
        for index in indexes:
            value = self._eval(env, index, quiet=not record)
            if record:
                self.result.subscripts.append(
                    SubscriptSite(
                        node=expr,
                        index=value,
                        index_text=_text(index),
                        literal_negative=_is_literal_index(index),
                        sub_nonneg_pair=self._sub_nonneg_pair(env, index),
                    )
                )
        return TOP_VALUE

    def _sub_nonneg_pair(self, env: Env, index: ast.expr) -> bool:
        if not (isinstance(index, ast.BinOp) and isinstance(index.op, ast.Sub)):
            return False
        left = self._eval(env, index.left, quiet=True)
        right = self._eval(env, index.right, quiet=True)
        return (
            left.interval.lo >= 0
            and right.interval.lo >= 0
            and not right.interval.is_top
            and not (left.interval.is_top and right.interval.is_top)
        )

    def _eval_call(
        self, env: Env, expr: ast.Call, record: bool
    ) -> AbstractValue:
        args = [
            self._eval(env, a, quiet=not record)
            for a in expr.args
            if not isinstance(a, ast.Starred)
        ]
        kwargs = {
            kw.arg: self._eval(env, kw.value, quiet=not record)
            for kw in expr.keywords
            if kw.arg is not None
        }
        chain = self.info.ctx.resolve_call_chain(expr.func)
        leaf = chain[-1] if chain else None
        if leaf in ("min", "max", "np_min", "np_max", "minimum", "maximum"):
            return self._eval_minmax(expr, args, leaf, record)
        if leaf == "abs" and args:
            return AbstractValue(args[0].interval.abs(), args[0].unit)
        if leaf == "len":
            return AbstractValue(Interval(0, _INF), UNIT_UNKNOWN)
        if leaf in ("float", "int") and len(args) == 1:
            iv = args[0].interval
            if leaf == "int":
                iv = Interval(_safe(iv.lo - 1, -_INF), _safe(iv.hi + 1, _INF))
            return AbstractValue(iv, args[0].unit)
        if leaf == "round" and args:
            iv = args[0].interval
            return AbstractValue(
                Interval(_safe(iv.lo - 1, -_INF), _safe(iv.hi + 1, _INF)),
                args[0].unit,
            )
        if leaf == "clip" and args:
            return self._eval_clip(env, expr, args)
        if leaf == "safe_ratio" and len(args) >= 2:
            default = kwargs.get("default")
            if default is None and len(args) >= 3:
                default = args[2]
            if default is None:
                default = AbstractValue(point(0.0), UNIT_SCALAR)
            quotient = AbstractValue(
                args[0].interval.div(args[1].interval),
                unit_div(args[0].unit, args[1].unit),
            )
            return quotient.join(default)
        if leaf == "sqrt" and args:
            return AbstractValue(Interval(0, _INF), UNIT_UNKNOWN)
        ref, _ = _resolve_callee(self.model, self.info, self.func, expr.func)
        if ref is not None and ref in self.summaries:
            return self.summaries[ref]
        return TOP_VALUE

    def _eval_minmax(
        self,
        expr: ast.Call,
        args: "list[AbstractValue]",
        leaf: str,
        record: bool,
    ) -> AbstractValue:
        if not args:
            return TOP_VALUE
        is_min = leaf in ("min", "np_min", "minimum")
        out = args[0]
        for arg in args[1:]:
            iv = (
                out.interval.min_with(arg.interval)
                if is_min
                else out.interval.max_with(arg.interval)
            )
            if record and units_clash(out.unit, arg.unit):
                self.result.clashes.append(
                    UnitClash(
                        node=expr,
                        kind="minmax",
                        left=out.unit,
                        right=arg.unit,
                        text=_text(expr),
                    )
                )
            out = AbstractValue(iv, unit_join(out.unit, arg.unit))
        return out

    def _eval_clip(
        self, env: Env, expr: ast.Call, args: "list[AbstractValue]"
    ) -> AbstractValue:
        # np.clip(x, lo, hi) or x.clip(lo, hi)
        if isinstance(expr.func, ast.Attribute) and not isinstance(
            expr.func.value, ast.Name
        ):
            base = self._eval(env, expr.func.value, quiet=True)
            operands = [base] + args
        elif len(args) >= 3:
            operands = args[:3]
        elif isinstance(expr.func, ast.Attribute):
            base = self._eval(env, expr.func.value, quiet=True)
            operands = [base] + args
        else:
            return TOP_VALUE
        if len(operands) < 3:
            return TOP_VALUE
        x, lo, hi = operands[0], operands[1], operands[2]
        return AbstractValue(
            Interval(
                max(x.interval.lo, lo.interval.lo),
                min(x.interval.hi, hi.interval.hi),
            )
            if max(x.interval.lo, lo.interval.lo)
            <= min(x.interval.hi, hi.interval.hi)
            else Interval(lo.interval.lo, hi.interval.hi),
            x.unit,
        )

    def _fold_global(self, name: str) -> "float | None":
        gv = self.info.globals.get(name)
        if gv is None or not isinstance(gv.node, ast.Assign):
            return None
        return _fold_const(gv.node.value)

    # -- producer return checks (UNIT001, @satisfies mode) ------------------
    def _check_producer_return(self, env: Env, value: ast.expr) -> None:
        if not self._recording:
            return
        if not any(d.endswith(".satisfies") for d in self.func.decorators):
            return
        if not isinstance(value, ast.Call):
            return
        for kw in value.keywords:
            if kw.arg is None:
                continue
            expected = FIELD_UNITS.get(kw.arg, unit_of_name(kw.arg))
            if expected not in DIMENSIONED:
                continue
            got = self._eval(env, kw.value, quiet=True)
            if units_clash(expected, got.unit):
                self.result.clashes.append(
                    UnitClash(
                        node=kw.value,
                        kind="return-field",
                        left=expected,
                        right=got.unit,
                        text=_text(kw.value),
                        field_name=kw.arg,
                    )
                )

    # -- branch refinement --------------------------------------------------
    def _refine(self, env: Env, test: ast.expr, assume: bool) -> "Env | None":
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            return self._refine(env, test.operand, not assume)
        if isinstance(test, ast.BoolOp):
            if (isinstance(test.op, ast.And) and assume) or (
                isinstance(test.op, ast.Or) and not assume
            ):
                out: "Env | None" = env
                for v in test.values:
                    if out is None:
                        return None
                    out = self._refine(out, v, assume)
                return out
            return env  # disjunctive refinement: give up, stay sound
        if isinstance(test, ast.Compare) and len(test.ops) == 1:
            return self._refine_compare(
                env, test.left, test.ops[0], test.comparators[0], assume
            )
        if isinstance(test, (ast.Name, ast.Attribute)):
            # numeric truthiness: `if x:` means x != 0 on the true edge.
            op: ast.cmpop = ast.NotEq() if assume else ast.Eq()
            zero = ast.copy_location(ast.Constant(value=0), test)
            return self._refine_compare(env, test, op, zero, True)
        return env

    def _refine_compare(
        self,
        env: Env,
        left: ast.expr,
        op: ast.cmpop,
        right: ast.expr,
        assume: bool,
    ) -> "Env | None":
        if not assume:
            flipped = _NEGATED.get(type(op))
            if flipped is None:
                return env
            op = flipped()
        lval = self._eval(env, left, quiet=True)
        rval = self._eval(env, right, quiet=True)
        li, ri = lval.interval, rval.interval
        if isinstance(op, (ast.Lt, ast.LtE)):
            strict = isinstance(op, ast.Lt)
            env = self._apply(env, left, Interval(-_INF, ri.hi, False, strict))
            if env is None:
                return None
            env = self._apply(env, right, Interval(li.lo, _INF, strict, False))
            if env is None:
                return None
            return self._apply_diff(env, left, right, upper=True, strict=strict)
        if isinstance(op, (ast.Gt, ast.GtE)):
            strict = isinstance(op, ast.Gt)
            env = self._apply(env, left, Interval(ri.lo, _INF, strict, False))
            if env is None:
                return None
            env = self._apply(env, right, Interval(-_INF, li.hi, False, strict))
            if env is None:
                return None
            return self._apply_diff(env, left, right, upper=False, strict=strict)
        if isinstance(op, ast.Eq):
            env = self._apply(env, left, ri)
            if env is None:
                return None
            return self._apply(env, right, li)
        if isinstance(op, ast.NotEq):
            if ri.lo == ri.hi:
                env = self._exclude(env, left, ri.lo)
            if env is not None and li.lo == li.hi:
                env = self._exclude(env, right, li.lo)
            return env
        return env

    def _apply(
        self, env: "Env | None", expr: ast.expr, bound: Interval
    ) -> "Env | None":
        if env is None:
            return None
        current = self._eval(env, expr, quiet=True)
        met = current.interval.meet(bound)
        if met is None:
            return None  # infeasible branch
        if isinstance(expr, ast.Name) and expr.id in env.vars:
            env.vars[expr.id] = replace(env.vars[expr.id], interval=met)
            return env
        key = _expr_key(expr, env)
        if key is not None:
            env.constraints[key] = met
        return env

    def _apply_diff(
        self,
        env: Env,
        left: ast.expr,
        right: ast.expr,
        upper: bool,
        strict: bool,
    ) -> Env:
        """Record ``left - right`` sign facts for the non-relational gap."""
        lk = _expr_key(left, env)
        rk = _expr_key(right, env)
        if lk is None or rk is None:
            return env
        key = f"b:sub({lk},{rk})"
        bound = (
            Interval(-_INF, 0, False, strict)
            if upper
            else Interval(0, _INF, strict, False)
        )
        existing = env.constraints.get(key)
        met = bound if existing is None else existing.meet(bound)
        if met is not None:
            env.constraints[key] = met
        return env

    def _exclude(self, env: Env, expr: ast.expr, v: float) -> "Env | None":
        current = self._eval(env, expr, quiet=True)
        iv = current.interval
        if iv.lo == v and iv.hi == v:
            return None  # x != v but x == v: infeasible
        if iv.lo == v:
            iv = Interval(iv.lo, iv.hi, True, iv.hi_open)
        elif iv.hi == v:
            iv = Interval(iv.lo, iv.hi, iv.lo_open, True)
        else:
            return env
        return self._apply(env, expr, iv)


_NEGATED = {
    ast.Lt: ast.GtE,
    ast.LtE: ast.Gt,
    ast.Gt: ast.LtE,
    ast.GtE: ast.Lt,
    ast.Eq: ast.NotEq,
    ast.NotEq: ast.Eq,
    ast.Is: None,
    ast.IsNot: None,
}
_NEGATED = {k: v for k, v in _NEGATED.items() if v is not None}


def _is_literal_index(index: ast.expr) -> bool:
    if isinstance(index, ast.Constant):
        return True
    return isinstance(index, ast.UnaryOp) and isinstance(
        index.operand, ast.Constant
    )


def _fold_const(expr: ast.expr) -> "float | None":
    """Tiny constant folder for module-level model constants."""
    if isinstance(expr, ast.Constant) and isinstance(expr.value, (int, float)):
        if isinstance(expr.value, bool):
            return None
        return float(expr.value)
    if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.USub):
        inner = _fold_const(expr.operand)
        return None if inner is None else -inner
    if isinstance(expr, ast.BinOp):
        left = _fold_const(expr.left)
        right = _fold_const(expr.right)
        if left is None or right is None:
            return None
        if isinstance(expr.op, ast.Add):
            return left + right
        if isinstance(expr.op, ast.Sub):
            return left - right
        if isinstance(expr.op, ast.Mult):
            return left * right
        if isinstance(expr.op, ast.Div) and right != 0:
            return left / right
        if isinstance(expr.op, ast.Pow):
            try:
                return float(left**right)
            except OverflowError:
                return None
    if isinstance(expr, ast.Call):
        # np.int64(2) ** 62 style wrappers: fold the single argument.
        if len(expr.args) == 1 and not expr.keywords:
            return _fold_const(expr.args[0])
    return None


# ---------------------------------------------------------------------------
# Whole-scope driver
# ---------------------------------------------------------------------------

class ValueAnalysis:
    """Interval/unit results for every function in the value scope."""

    def __init__(
        self,
        model: ProgramModel,
        graph: CallGraph,
        *,
        scope: "tuple[tuple[str, ...], ...]" = VALUE_SCOPE,
        rounds: int = SUMMARY_ROUNDS,
    ) -> None:
        self.model = model
        self.graph = graph
        self.scope = scope
        self.summaries: "dict[str, AbstractValue]" = {}
        self.results: "dict[str, FunctionResult]" = {}
        scoped = [
            (model.modules[func.module], func)
            for func in model.functions()
            if _module_has_segments(func.module, scope)
        ]
        for round_no in range(rounds):
            record = round_no == rounds - 1
            for info, func in scoped:
                result = _Interp(model, info, func, self.summaries).run(record)
                self.summaries[func.ref] = result.returns
                if record:
                    self.results[func.ref] = result

    def iter_results(self) -> "list[FunctionResult]":
        return [self.results[ref] for ref in sorted(self.results)]


# ---------------------------------------------------------------------------
# Cross-implementation constant roles (DRIFT001)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ConstantSite:
    """Where one implementation declares a model constant.

    ``kind`` is ``"global"`` (a module-level named binding, folded with
    the tiny constant folder so ``1.0 - 1e-9`` works) or
    ``"clamp-floor"`` (the literal floor inside a ``max(...)`` clamp
    whose target or arguments mention *name*).
    """

    impl: str
    module: "tuple[str, ...]"
    kind: str
    name: str


@dataclass(frozen=True)
class ConstantRole:
    role: str
    description: str
    sites: "tuple[ConstantSite, ...]"


@dataclass(frozen=True)
class RoleReading:
    role: ConstantRole
    site: ConstantSite
    info: ModuleInfo
    lineno: int
    values: "tuple[float, ...]"  # empty => declared site missing


#: The model constants that must stay in lock-step across the sibling
#: implementations.  The scalar engine and fast path share
#: ``sim.stats`` by construction (both produce counters that the stats
#: layer folds), and the batch kernel reuses the same stats reduction —
#: so the places where the Eq. 9-11 constants are *declared* are
#: ``sim.stats`` and the tier-0 surrogate's independent re-derivation.
MODEL_CONSTANT_ROLES: "tuple[ConstantRole, ...]" = (
    ConstantRole(
        role="overlap-cap",
        description="upper clamp keeping overlap_ratio_cm strictly below 1",
        sites=(
            ConstantSite("sim.stats", ("sim", "stats"), "global", "_MAX_OVERLAP"),
            ConstantSite(
                "analysis.surrogate",
                ("analysis", "surrogate"),
                "global",
                "_MAX_OVERLAP",
            ),
        ),
    ),
    ConstantRole(
        role="cpi-exe-floor",
        description="denominator floor under cpi_exe in the LPMR ratios",
        sites=(
            ConstantSite("sim.stats", ("sim", "stats"), "clamp-floor", "cpi_exe"),
            ConstantSite(
                "analysis.surrogate",
                ("analysis", "surrogate"),
                "clamp-floor",
                "cpi_exe",
            ),
        ),
    ),
)


def extract_model_constants(
    model: ProgramModel,
    roles: "tuple[ConstantRole, ...]" = MODEL_CONSTANT_ROLES,
) -> "list[RoleReading]":
    """Read every declared constant site present in *model*.

    One reading per (role, site): a site spec can match several modules
    of a package (``analysis.surrogate`` matches the ``__init__`` and
    ``predictor``), so values are merged across matching modules and the
    site counts as *missing* only when no matching module declares the
    constant.  A site whose spec matches no analyzed module at all is
    skipped entirely (partial fixture trees).
    """
    readings: "list[RoleReading]" = []
    for role in roles:
        for site in role.sites:
            matched = [
                model.modules[mod_name]
                for mod_name in sorted(model.modules)
                if _module_has_segments(mod_name, (site.module,))
            ]
            if not matched:
                continue
            found: "list[tuple[ModuleInfo, int, tuple[float, ...]]]" = []
            for info in matched:
                values, lineno = _read_site(info, site)
                if values:
                    found.append((info, lineno, values))
            if found:
                merged = tuple(v for _, _, vs in found for v in vs)
                readings.append(
                    RoleReading(role, site, found[0][0], found[0][1], merged)
                )
            else:
                readings.append(RoleReading(role, site, matched[0], 1, ()))
    return readings


def _read_site(
    info: ModuleInfo, site: ConstantSite
) -> "tuple[tuple[float, ...], int]":
    if site.kind == "global":
        gv = info.globals.get(site.name)
        if gv is not None and isinstance(gv.node, ast.Assign):
            value = _fold_const(gv.node.value)
            if value is not None:
                return (value,), gv.lineno
        return (), 1
    # clamp-floor: literal args of max(...) calls tied to the name.
    values: "list[float]" = []
    lineno = 1
    for node in ast.walk(info.ctx.tree):
        if not (isinstance(node, ast.Call) and _is_max_call(info, node)):
            continue
        if not _mentions(info, node, site.name):
            continue
        for arg in node.args:
            if isinstance(arg, ast.Constant) and isinstance(
                arg.value, (int, float)
            ) and not isinstance(arg.value, bool):
                if not values:
                    lineno = node.lineno
                values.append(float(arg.value))
    return tuple(values), lineno


def _is_max_call(info: ModuleInfo, node: ast.Call) -> bool:
    chain = info.ctx.resolve_call_chain(node.func)
    return bool(chain) and chain[-1] in ("max", "np_max", "maximum")


def _mentions(info: ModuleInfo, call: ast.Call, name: str) -> bool:
    """The clamp floors *name* itself.

    True when an argument is exactly the named symbol (a bare ``name`` or
    an attribute ending in ``.name``), or the clamp's value is assigned
    to / passed as a keyword named *name*.  Derived expressions like
    ``max(self.cpi - self.cpi_exe, 0.0)`` deliberately do not match —
    they floor a different quantity.
    """
    for arg in call.args:
        if isinstance(arg, ast.Name) and arg.id == name:
            return True
        if isinstance(arg, ast.Attribute) and arg.attr == name:
            return True
    node: ast.AST = call
    while True:
        up = info.ctx.parent(node)
        if up is None:
            return False
        if isinstance(up, ast.Assign):
            return any(
                (isinstance(t, ast.Name) and t.id == name)
                or (isinstance(t, ast.Attribute) and t.attr == name)
                for t in up.targets
            )
        if isinstance(up, ast.keyword):
            return up.arg == name
        if isinstance(up, ast.stmt):
            return False
        node = up
