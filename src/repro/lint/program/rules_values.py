"""The value-analysis rule packs: VAL001/VAL002, UNIT001, DRIFT001.

These consume the abstract-interpretation results of
:mod:`repro.lint.program.values` (built once per run through
:meth:`ProgramContext.value_analysis`):

* **VAL001** — a ``/``, ``//`` or ``%`` whose denominator *interval*
  provably contains zero.  A ⊤ denominator is left to the per-file
  NUM001 heuristics (this rule only speaks when the analysis actually
  knows something); ``safe_ratio`` calls are the sanctioned form and
  are never flagged.
* **VAL002** — a subscript index that is possibly negative: either its
  interval is known mixed-sign, or it is an ``x - y`` gather with both
  operands non-negative and the difference unproven — the PR-8
  hetero-ROB bug shape.  Deliberate ``a[-1]`` literal indexing is
  exempt.
* **UNIT001** — arithmetic mixing two concrete dimensions (cycles +
  ratio, comparing a count against a latency, ...), including a
  ``@satisfies``-decorated producer returning the wrong unit in a
  report field.
* **DRIFT001** — cross-implementation drift of model constants: the
  per-role readings of :func:`extract_model_constants` disagree, or a
  constant is declared in one sibling implementation but missing from
  another.  DRIFT001 is *never* baselinable — drift is exactly the
  grandfathered divergence the rule exists to prevent.

Errors lean the same way as the rest of the program tier: unresolved
calls and unmodeled expressions evaluate to ⊤, which silences VAL/UNIT
rather than guessing — so every finding is backed by a concrete
interval or unit derivation, reported in the violation's ``detail``.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import replace

from repro.lint.engine import Severity, Violation
from repro.lint.program.rules import (
    ProgramContext,
    ProgramRule,
    register_program,
)
from repro.lint.program.values import (
    MODEL_CONSTANT_ROLES,
    RoleReading,
    extract_model_constants,
)

__all__ = [
    "PossibleZeroDivision",
    "PossiblyNegativeIndex",
    "UnitMismatch",
    "ModelConstantDrift",
]


def _with_detail(violation: Violation, **payload: object) -> Violation:
    return replace(violation, detail=payload)


@register_program
class PossibleZeroDivision(ProgramRule):
    """VAL001: denominator interval contains zero."""

    name = "VAL001"
    severity = Severity.ERROR
    description = (
        "possible division by zero: the denominator's value range contains 0 "
        "and no guard, clamp or safe_ratio() excludes it"
    )

    def check(self, pctx: ProgramContext) -> Iterator[Violation]:
        va = pctx.value_analysis()
        for res in va.iter_results():
            info = pctx.module_for(res.func)
            for site in res.divisions:
                iv = site.denom.interval
                if iv.is_top or not iv.contains_zero():
                    continue
                v = self.violation(
                    info,
                    site.node,
                    f"possible division by zero in {res.func.qualname}: "
                    f"denominator {site.denom_text!r} has range {iv}; guard "
                    "the branch, clamp with max(..., eps) or use safe_ratio()",
                )
                yield _with_detail(
                    v,
                    function=res.func.ref,
                    denominator=site.denom_text,
                    interval=iv.bounds(),
                )


@register_program
class PossiblyNegativeIndex(ProgramRule):
    """VAL002: possibly-negative index/gather into an array."""

    name = "VAL002"
    severity = Severity.ERROR
    description = (
        "possibly-negative array index: the index interval admits negative "
        "values (or is an unproven nonneg-minus-nonneg gather, the "
        "hetero-ROB bug shape); clamp or guard before subscripting"
    )

    def check(self, pctx: ProgramContext) -> Iterator[Violation]:
        va = pctx.value_analysis()
        for res in va.iter_results():
            info = pctx.module_for(res.func)
            for site in res.subscripts:
                if site.literal_negative:
                    continue
                iv = site.index.interval
                mixed = not iv.is_top and iv.lo < 0 and iv.hi >= 0
                gather = site.sub_nonneg_pair and not iv.nonneg
                if not mixed and not gather:
                    continue
                if mixed:
                    why = f"index {site.index_text!r} has range {iv}"
                else:
                    why = (
                        f"index {site.index_text!r} subtracts two non-negative "
                        "quantities but the difference is unproven (clamp with "
                        "max(..., 0) or guard with `if a >= b:`)"
                    )
                v = self.violation(
                    info,
                    site.node,
                    f"possibly-negative index in {res.func.qualname}: {why}",
                )
                yield _with_detail(
                    v,
                    function=res.func.ref,
                    index=site.index_text,
                    interval=iv.bounds(),
                    gather_shape=site.sub_nonneg_pair,
                )


_CLASH_KINDS = {
    "add": "adding",
    "sub": "subtracting",
    "compare": "comparing",
    "minmax": "clamping across",
    "return-field": "returning",
}


@register_program
class UnitMismatch(ProgramRule):
    """UNIT001: arithmetic mixing two concrete model dimensions."""

    name = "UNIT001"
    severity = Severity.ERROR
    description = (
        "dimension-mismatched arithmetic: both operands carry concrete "
        "model units (cycles/instructions/accesses/bytes/ratio) and they "
        "differ; convert explicitly or fix the formula"
    )

    def check(self, pctx: ProgramContext) -> Iterator[Violation]:
        va = pctx.value_analysis()
        for res in va.iter_results():
            info = pctx.module_for(res.func)
            for clash in res.clashes:
                verb = _CLASH_KINDS.get(clash.kind, clash.kind)
                if clash.kind == "return-field":
                    msg = (
                        f"unit mismatch in {res.func.qualname}: contract "
                        f"field {clash.field_name!r} expects {clash.left} but "
                        f"{clash.text!r} has unit {clash.right}"
                    )
                else:
                    msg = (
                        f"unit mismatch in {res.func.qualname}: {verb} "
                        f"{clash.left} and {clash.right} in {clash.text!r}"
                    )
                v = self.violation(info, clash.node, msg)
                yield _with_detail(
                    v,
                    function=res.func.ref,
                    kind=clash.kind,
                    left_unit=clash.left,
                    right_unit=clash.right,
                    expression=clash.text,
                    **(
                        {"field": clash.field_name}
                        if clash.field_name is not None
                        else {}
                    ),
                )


@register_program
class ModelConstantDrift(ProgramRule):
    """DRIFT001: sibling implementations disagree on a model constant."""

    name = "DRIFT001"
    severity = Severity.ERROR
    description = (
        "cross-implementation model-constant drift: sibling implementations "
        "declare different values for the same symbolic role (or one "
        "dropped the constant); never baselinable"
    )

    def check(self, pctx: ProgramContext) -> Iterator[Violation]:
        readings = extract_model_constants(pctx.model, MODEL_CONSTANT_ROLES)
        by_role: "dict[str, list[RoleReading]]" = {}
        for reading in readings:
            by_role.setdefault(reading.role.role, []).append(reading)
        for role_name in sorted(by_role):
            group = by_role[role_name]
            if len(group) < 2:
                # Only one sibling present in the analyzed tree: nothing
                # to cross-check (keeps partial fixture runs quiet).
                continue
            present = [r for r in group if r.values]
            if not present:
                continue
            yield from self._intra_site(group)
            yield from self._cross_site(role_name, group, present)

    def _intra_site(
        self, group: "list[RoleReading]"
    ) -> Iterator[Violation]:
        for reading in group:
            distinct = sorted(set(reading.values))
            if len(distinct) <= 1:
                continue
            v = self.violation(
                reading.info,
                reading.info.ctx.tree,
                f"model-constant drift within {reading.site.impl}: role "
                f"{reading.role.role!r} ({reading.role.description}) is "
                f"declared with multiple values {distinct}",
            )
            yield _with_detail(
                _at(v, reading.lineno),
                role=reading.role.role,
                implementation=reading.site.impl,
                values=distinct,
            )

    def _cross_site(
        self,
        role_name: str,
        group: "list[RoleReading]",
        present: "list[RoleReading]",
    ) -> Iterator[Violation]:
        distinct = sorted({v for r in present for v in r.values})
        declared = {r.site.impl: sorted(set(r.values)) for r in present}
        if len(distinct) > 1:
            for reading in present:
                others = {
                    impl: vs
                    for impl, vs in declared.items()
                    if impl != reading.site.impl
                }
                v = self.violation(
                    reading.info,
                    reading.info.ctx.tree,
                    f"model-constant drift for role {role_name!r} "
                    f"({reading.role.description}): {reading.site.impl} "
                    f"declares {sorted(set(reading.values))} but sibling "
                    f"implementations declare {others}",
                )
                yield _with_detail(
                    _at(v, reading.lineno),
                    role=role_name,
                    implementation=reading.site.impl,
                    values=sorted(set(reading.values)),
                    siblings=others,
                )
        for reading in group:
            if reading.values:
                continue
            v = self.violation(
                reading.info,
                reading.info.ctx.tree,
                f"model constant for role {role_name!r} "
                f"({reading.role.description}) is declared by "
                f"{sorted(declared)} but missing from {reading.site.impl}",
            )
            yield _with_detail(
                _at(v, reading.lineno),
                role=role_name,
                implementation=reading.site.impl,
                missing=True,
                siblings=declared,
            )


def _at(violation: Violation, lineno: int) -> Violation:
    return replace(violation, line=lineno)
