"""Fingerprint baseline for graded adoption of the program rules.

Turning on a whole-program analyzer over a grown codebase produces a
burst of pre-existing findings.  The baseline file (checked in at the
repo root as ``lint-baseline.json``) records their fingerprints so that
CI fails only on *new* findings while the backlog is paid down; removing
entries ratchets the gate tighter.

Fingerprints hash the rule id, the normalized path, and the *stripped
source line text* — not the line number — so unrelated edits above a
finding do not invalidate the baseline.  Identical (rule, path, text)
triples are disambiguated by an occurrence ordinal.  SUP001 and the
ASYNC001-004 findings are never baselined: an unjustified suppression
must be fixed, not grandfathered (see
:class:`~repro.lint.program.rules.UnjustifiedSuppression`), and a call
that can stall the event loop — or deadlock it — stalls every connected
client, so the async tier starts, and stays, at zero.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath

from repro.lint.engine import Violation

__all__ = [
    "BaselineEntry",
    "Baseline",
    "fingerprint_violation",
    "load_baseline",
    "write_baseline",
]

#: Rules that may never be baselined (eager-failure semantics).  DRIFT001
#: joins the set because grandfathered cross-implementation constant
#: drift is precisely the divergence the rule exists to prevent.
NEVER_BASELINED = frozenset({
    "SUP001", "ASYNC001", "ASYNC002", "ASYNC003", "ASYNC004", "DRIFT001",
})

#: On-disk schema version, bumped if the fingerprint recipe changes.
_BASELINE_VERSION = 1


def _normalize_path(path: str) -> str:
    """Forward-slash, relative-looking path so fingerprints are portable."""
    return str(PurePosixPath(*Path(path).parts)).lstrip("/")


def fingerprint_violation(
    violation: Violation, line_text: str, occurrence: int = 0
) -> str:
    """The stable identity of one finding.

    ``line_text`` is the source line the violation anchors to (stripped
    before hashing); *occurrence* disambiguates repeated identical
    triples within one file.
    """
    basis = "\x1f".join(
        [
            violation.rule,
            _normalize_path(violation.path),
            line_text.strip(),
            str(occurrence),
        ]
    )
    return hashlib.sha256(basis.encode("utf-8")).hexdigest()[:20]


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding, with human-readable context."""

    fingerprint: str
    rule: str
    path: str
    line: int
    message: str

    def to_dict(self) -> "dict[str, object]":
        """JSON form, key-sorted by the writer for stable diffs."""
        return {
            "fingerprint": self.fingerprint,
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


@dataclass
class Baseline:
    """The set of grandfathered finding fingerprints."""

    entries: "dict[str, BaselineEntry]" = field(default_factory=dict)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self.entries

    def __len__(self) -> int:
        return len(self.entries)


def load_baseline(path: "str | Path") -> Baseline:
    """Read a baseline file; a missing file is an empty baseline."""
    file_path = Path(path)
    if not file_path.exists():
        return Baseline()
    payload = json.loads(file_path.read_text(encoding="utf-8"))
    if not isinstance(payload, dict) or "entries" not in payload:
        raise ValueError(f"{file_path}: not a lint baseline file")
    baseline = Baseline()
    for raw in payload["entries"]:
        entry = BaselineEntry(
            fingerprint=str(raw["fingerprint"]),
            rule=str(raw["rule"]),
            path=str(raw["path"]),
            line=int(raw["line"]),
            message=str(raw["message"]),
        )
        baseline.entries[entry.fingerprint] = entry
    return baseline


def write_baseline(path: "str | Path", entries: "list[BaselineEntry]") -> None:
    """Write *entries* as a baseline file (sorted, stable for diffs)."""
    ordered = sorted(entries, key=lambda e: (e.path, e.rule, e.line, e.fingerprint))
    payload = {
        "version": _BASELINE_VERSION,
        "comment": (
            "Grandfathered repro lint --program findings. Remove entries as "
            "the underlying findings are fixed; never add SUP001 entries."
        ),
        "entries": [entry.to_dict() for entry in ordered],
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
