"""The whole-program rule packs: RACE, PURE, FLOW, ASYNC, SUP.

Each rule receives a :class:`ProgramContext` — the symbol table, call
graph, entry points and effect analysis built once by the driver — and
yields ordinary :class:`~repro.lint.engine.Violation`\\ s, so the
reporters and suppression machinery are shared with the per-file engine.

The analyses are *under*-approximate on call resolution (dynamic dispatch
contributes no edge) and *over*-approximate on pool roots (anything that
escapes a pool dispatcher is worker-side reachable); each rule below
documents which direction its errors lean.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.lint.engine import Severity, Violation
from repro.lint.program.callgraph import (
    CallGraph,
    EntryPoints,
    ExecutionContexts,
    _module_has_segments,
    _resolve_callee,
    classify_contexts,
)
from repro.lint.program.dataflow import (
    Definition,
    EffectAnalysis,
    ReachingDefs,
    reaching_definitions,
)
from repro.lint.program.locks import LockAnalysis
from repro.lint.program.symbols import FunctionInfo, ModuleInfo, ProgramModel
from repro.lint.program.values import ValueAnalysis

__all__ = ["ProgramContext", "ProgramRule", "PROGRAM_RULES", "register_program"]


@dataclass
class ProgramContext:
    """Everything a whole-program rule needs, built once per run."""

    model: ProgramModel
    graph: CallGraph
    entries: EntryPoints
    effects: EffectAnalysis
    #: Functions transitively reachable from the pool job paths.
    pool_reachable: "set[str]" = field(default_factory=set)
    #: Loop/thread/worker classification (built lazily if the driver
    #: didn't; the lazy path keeps hand-built test contexts working).
    contexts: "ExecutionContexts | None" = None
    #: Lock discovery and order graph (same lazy contract).
    locks: "LockAnalysis | None" = None
    #: Interval/unit abstract interpretation (same lazy contract; shared
    #: by the VAL/UNIT rule packs so the fixpoint runs once per lint).
    values: "ValueAnalysis | None" = None

    def module_for(self, func: FunctionInfo) -> ModuleInfo:
        """The module that defines *func*."""
        return self.model.modules[func.module]

    def pool_path(self, ref: str) -> "list[str]":
        """A shortest pool-root -> *ref* call chain (empty if direct root)."""
        return self.graph.path(self.entries.pool, ref) or [ref]

    def async_contexts(self) -> ExecutionContexts:
        """The execution-context classification, built on first use."""
        if self.contexts is None:
            self.contexts = classify_contexts(
                self.model, self.graph, pool_reachable=self.pool_reachable
            )
        return self.contexts

    def lock_analysis(self) -> LockAnalysis:
        """The lock discovery + order graph, built on first use."""
        if self.locks is None:
            self.locks = LockAnalysis(self.model, self.graph)
        return self.locks

    def value_analysis(self) -> ValueAnalysis:
        """The interval/unit abstract interpretation, built on first use."""
        if self.values is None:
            self.values = ValueAnalysis(self.model, self.graph)
        return self.values


def _chain_text(refs: "list[str]") -> str:
    """Human-readable call chain: bare qualnames joined with arrows."""
    return " -> ".join(ref.partition(":")[2] or ref for ref in refs)


class ProgramRule:
    """Base class for whole-program rules (mirrors the per-file Rule)."""

    name: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""

    def check(self, pctx: ProgramContext) -> Iterator[Violation]:
        """Yield violations over the whole program; overridden per rule."""
        raise NotImplementedError

    def violation(
        self, info: ModuleInfo, node: ast.AST, message: str
    ) -> Violation:
        """Build a violation anchored at *node* in *info*'s file."""
        return Violation(
            path=info.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.name,
            severity=self.severity,
            message=message,
        )


#: The program-rule registry: rule name -> singleton instance.
PROGRAM_RULES: "dict[str, ProgramRule]" = {}


def register_program(cls: "type[ProgramRule]") -> "type[ProgramRule]":
    """Class decorator adding one instance of *cls* to the registry."""
    if not cls.name:
        raise ValueError(f"program rule class {cls.__name__} must set a name")
    if cls.name in PROGRAM_RULES:
        raise ValueError(f"duplicate program rule name {cls.name!r}")
    PROGRAM_RULES[cls.name] = cls()
    return cls


# ---------------------------------------------------------------------------
# RACE — escape analysis over the fork boundary
# ---------------------------------------------------------------------------

@register_program
class UnguardedWorkerWrite(ProgramRule):
    """RACE001: a pool-worker path mutates module-level state with no lock.

    Walks every function reachable from the pool roots (worker loops,
    ``Job(fn=...)`` payloads, ``worker_setup`` callables) and flags direct
    writes — rebinds, subscript/attribute stores, mutating method calls —
    to module-level globals that are not under a ``with <...lock...>:``
    guard.  Roots are over-approximated (escaped function values), so a
    finding here may be worker-side *or* supervisor-side in practice; the
    justification convention exists for exactly the sanctioned cases
    (e.g. the fork-snapshot trace store).
    """

    name = "RACE001"
    severity = Severity.ERROR
    description = (
        "module-level state mutated on an evaluation-pool worker path "
        "without a lock guard"
    )

    def check(self, pctx: ProgramContext) -> Iterator[Violation]:
        for ref in sorted(pctx.pool_reachable):
            func = pctx.model.function(ref)
            if func is None:
                continue
            info = pctx.module_for(func)
            for effect in pctx.effects.effects_of(ref).effects:
                if effect.kind != "global-write" or effect.target is None:
                    continue
                if effect.lock_guarded:
                    continue
                chain = _chain_text(pctx.pool_path(ref))
                yield self.violation(
                    info,
                    effect.node,
                    f"{effect.detail} on a pool-worker path ({chain}); "
                    "guard with a lock, make it worker-local, or justify "
                    "the fork-snapshot design with a noqa",
                )


@register_program
class ForkSnapshotDivergence(ProgramRule):
    """RACE002: state read by workers but (re)written by the supervisor.

    Under the fork start method a worker inherits a *snapshot* of module
    state; under spawn it gets a fresh import.  A global that worker-side
    code reads while supervisor-side code mutates it therefore diverges
    silently between start methods.  Flagged at the global's definition,
    naming one reader and one writer.  Import-time-frozen constants are
    exempt: only globals some function mutates at runtime participate.
    """

    name = "RACE002"
    severity = Severity.ERROR
    description = (
        "module-level state read on worker paths but mutated by "
        "supervisor-side code (fork-snapshot divergence)"
    )

    def check(self, pctx: ProgramContext) -> Iterator[Violation]:
        readers: "dict[str, list[str]]" = {}
        writers: "dict[str, list[str]]" = {}
        for func in pctx.model.functions():
            fe = pctx.effects.effects_of(func.ref)
            worker_side = func.ref in pctx.pool_reachable
            for gvar, _node in fe.global_reads:
                if worker_side:
                    readers.setdefault(gvar.ref, []).append(func.ref)
            for effect in fe.effects:
                if effect.kind == "global-write" and effect.target is not None:
                    if not worker_side:
                        writers.setdefault(effect.target.ref, []).append(func.ref)
        for gref in sorted(set(readers) & set(writers)):
            module, _, name = gref.partition(":")
            info = pctx.model.modules.get(module)
            gvar = info.globals.get(name) if info is not None else None
            if info is None or gvar is None:
                continue
            reader = sorted(readers[gref])[0]
            writer = sorted(writers[gref])[0]
            yield self.violation(
                info,
                gvar.node,
                f"{module}.{name} is read on a pool-worker path "
                f"(e.g. {_chain_text([reader])}) but mutated supervisor-side "
                f"(e.g. {_chain_text([writer])}); fork and spawn workers "
                "will observe different values — pass it through "
                "worker_setup or justify the design with a noqa",
            )


# ---------------------------------------------------------------------------
# PURE — transitive purity of measurement producers
# ---------------------------------------------------------------------------

#: Modules whose effects are sanctioned inside measurement code: the
#: observability layer (gated, commutative, observational), the contract
#: decorators themselves, and raise-only validation helpers.
_PURITY_SANCTIONED = (("obs",), ("lint", "contracts"), ("util", "validation"))

#: Modules whose public functions are measurement producers.
_MEASUREMENT_MODULES = (
    ("core", "camat"),
    ("core", "lpm"),
    ("core", "stall"),
    ("sim", "stats"),
    ("analysis", "surrogate"),
)


def _is_sanctioned_module(name: str) -> bool:
    return _module_has_segments(name, _PURITY_SANCTIONED)


def _measurement_producers(model: ProgramModel) -> "Iterator[FunctionInfo]":
    """Functions held to the purity contract, deterministically ordered.

    The union of (a) everything decorated ``@satisfies(...)`` anywhere in
    the program and (b) public top-level functions of the measurement
    modules — so a producer cannot escape the contract by dropping the
    decorator.
    """
    for func in model.functions():
        decorated = any(ref.split(".")[-1] == "satisfies" for ref in func.decorators)
        in_measurement = (
            _module_has_segments(func.module, _MEASUREMENT_MODULES)
            and func.class_name is None
            and not func.name.startswith("_")
        )
        if decorated or in_measurement:
            yield func


@register_program
class ImpureMeasurementProducer(ProgramRule):
    """PURE001: a measurement producer transitively performs side effects.

    Producers are the ``@satisfies``-decorated functions plus the public
    surface of ``core.camat`` / ``core.lpm`` / ``core.stall`` /
    ``sim.stats``.  A producer may mutate its own arguments and locals
    (contained state) but must not — directly or through any statically
    reachable callee — write module globals, reseed ambient RNG state,
    touch the filesystem/environment, or print.  Calls into the
    observability layer, the contract decorators, and raise-only
    validators are sanctioned.  Unresolved calls are assumed pure
    (under-approximate).
    """

    name = "PURE001"
    severity = Severity.ERROR
    description = (
        "measurement producer transitively performs side effects "
        "(global writes, I/O, ambient RNG mutation)"
    )

    def check(self, pctx: ProgramContext) -> Iterator[Violation]:
        for func in _measurement_producers(pctx.model):
            # "blocking" is the event-loop tier's effect kind (ASYNC001);
            # purity keeps its original four kinds so verdicts don't shift.
            found = pctx.effects.first_effect_path(
                func.ref,
                sanctioned=_is_sanctioned_module,
                include=lambda e: e.kind != "blocking",
            )
            if found is None:
                continue
            chain, effect = found
            info = pctx.module_for(func)
            via = (
                f" via {_chain_text(chain)}" if len(chain) > 1 else ""
            )
            yield self.violation(
                info,
                func.node,
                f"measurement producer {func.qualname} is impure: "
                f"{effect.detail}{via} "
                f"(line {getattr(effect.node, 'lineno', '?')})",
            )


@register_program
class AmbientStateRead(ProgramRule):
    """PURE002: a measurement producer reads runtime-mutated module state.

    Reading a module global that some function mutates at runtime makes a
    producer's output depend on call ordering — the hidden-input twin of
    PURE001's hidden *outputs*.  Import-time-frozen globals (registries
    and constants populated only at module scope) are legitimate inputs
    and exempt.
    """

    name = "PURE002"
    severity = Severity.ERROR
    description = (
        "measurement producer reads module-level state that is mutated "
        "at runtime (hidden input)"
    )

    def check(self, pctx: ProgramContext) -> Iterator[Violation]:
        mutated = pctx.effects.runtime_mutated

        for func in _measurement_producers(pctx.model):
            found = pctx.effects.first_read_path(
                func.ref,
                sanctioned=_is_sanctioned_module,
                reads=lambda g: g.ref in mutated,
            )
            if found is None:
                continue
            chain, gvar, node = found
            info = pctx.module_for(func)
            via = f" via {_chain_text(chain)}" if len(chain) > 1 else ""
            yield self.violation(
                info,
                func.node,
                f"measurement producer {func.qualname} reads runtime-mutated "
                f"module state {gvar.module}.{gvar.name}{via} "
                f"(line {getattr(node, 'lineno', '?')})",
            )


# ---------------------------------------------------------------------------
# FLOW — RNG provenance
# ---------------------------------------------------------------------------

#: RNG constructors that bypass the seeding discipline.
_BANNED_RNG_CHAINS = (
    ("numpy", "random", "default_rng"),
    ("numpy", "random", "RandomState"),
    ("numpy", "random", "Generator"),
    ("random", "Random"),
    ("random", "SystemRandom"),
)

#: Modules whose stochastic inputs must come from :mod:`repro.util.rng`.
_RNG_TARGET_MODULES = (("sim", "engine"), ("workloads", "generators"))


def _is_banned_rng_call(info: ModuleInfo, node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    chain = info.ctx.resolve_call_chain(node.func)
    if not chain:
        return False
    return any(
        tuple(chain[: len(banned)]) == banned for banned in _BANNED_RNG_CHAINS
    )


def _enclosing_statement(info: ModuleInfo, node: ast.AST) -> "ast.stmt | None":
    if isinstance(node, ast.stmt):
        return node
    for ancestor in info.ctx.ancestors(node):
        if isinstance(ancestor, ast.stmt):
            return ancestor
    return None


@register_program
class RNGProvenance(ProgramRule):
    """FLOW001: unseeded RNG state flowing into the engine or generators.

    Two checks share the ban list (``numpy.random.default_rng`` /
    ``RandomState`` / ``Generator``, ``random.Random`` /
    ``SystemRandom``):

    * **at the target** — ``sim.engine`` and ``workloads.generators``
      modules may not construct a banned RNG themselves;
    * **at the source** — in any module, a local whose reaching
      definitions include a banned constructor may not be passed as an
      argument to a call that resolves into a target module.  Provenance
      is tracked with the reaching-definitions fixpoint (copies through
      plain ``a = b`` assignments are followed), so renaming the
      generator does not evade the rule.

    Generators built by :mod:`repro.util.rng` (``make_rng`` / ``spawn``)
    carry seed provenance and pass freely.
    """

    name = "FLOW001"
    severity = Severity.ERROR
    description = (
        "RNG created outside util.rng reaches sim.engine / "
        "workloads.generators (provenance violation)"
    )

    #: Reaching-defs of the function currently being checked (set by
    #: :meth:`_tainted_definitions`, consumed by :meth:`_check_tainted_args`).
    _rd: ReachingDefs

    def check(self, pctx: ProgramContext) -> Iterator[Violation]:
        for func in pctx.model.functions():
            info = pctx.module_for(func)
            in_target = _module_has_segments(func.module, _RNG_TARGET_MODULES)
            tainted = self._tainted_definitions(info, func)
            for node in ast.walk(func.node):
                if not isinstance(node, ast.Call):
                    continue
                if in_target and _is_banned_rng_call(info, node):
                    chain = info.ctx.resolve_call_chain(node.func) or ["<rng>"]
                    yield self.violation(
                        info,
                        node,
                        f"{'.'.join(chain)}() constructed inside "
                        f"{func.module}; route all randomness through "
                        "util.rng (make_rng / spawn)",
                    )
                    continue
                yield from self._check_tainted_args(pctx, info, func, node, tainted)

    def _tainted_definitions(
        self, info: ModuleInfo, func: FunctionInfo
    ) -> "dict[str, set[Definition]]":
        """name -> its definitions carrying banned-RNG provenance."""
        rd = reaching_definitions(func.node)
        stmts = {id(s): s for s in rd.cfg.statements()}
        all_defs = {
            d for state in rd.before.values() for defs in state.values() for d in defs
        }
        tainted: "set[Definition]" = set()
        changed = True
        while changed:
            changed = False
            for definition in all_defs:
                if definition in tainted or definition.value is None:
                    continue
                value = definition.value
                is_tainted = _is_banned_rng_call(info, value)
                if not is_tainted and isinstance(value, ast.Name):
                    stmt = stmts.get(definition.stmt_id)
                    if stmt is not None:
                        is_tainted = any(
                            d in tainted for d in rd.at(stmt, value.id)
                        )
                if is_tainted:
                    tainted.add(definition)
                    changed = True
        by_name: "dict[str, set[Definition]]" = {}
        for definition in tainted:
            by_name.setdefault(definition.name, set()).add(definition)
        self._rd = rd  # reused by _check_tainted_args within this function
        return by_name

    def _check_tainted_args(
        self,
        pctx: ProgramContext,
        info: ModuleInfo,
        func: FunctionInfo,
        call: ast.Call,
        tainted: "dict[str, set[Definition]]",
    ) -> Iterator[Violation]:
        if not tainted:
            return
        callee_ref, _dotted = _resolve_callee(pctx.model, info, func, call.func)
        if callee_ref is None:
            return
        callee = pctx.model.function(callee_ref)
        if callee is None or not _module_has_segments(
            callee.module, _RNG_TARGET_MODULES
        ):
            return
        stmt = _enclosing_statement(info, call)
        if stmt is None:
            return
        args: "list[ast.expr]" = [*call.args, *(kw.value for kw in call.keywords)]
        for arg in args:
            if not isinstance(arg, ast.Name) or arg.id not in tainted:
                continue
            reaching = self._rd.at(stmt, arg.id)
            if reaching & tainted[arg.id]:
                yield self.violation(
                    info,
                    call,
                    f"argument {arg.id!r} to {callee.module}.{callee.qualname} "
                    "carries an RNG constructed outside util.rng; build it "
                    "with util.rng.make_rng/spawn so the seed is tracked",
                )


# ---------------------------------------------------------------------------
# ASYNC / RACE003 — event-loop discipline over the kinded call graph
# ---------------------------------------------------------------------------

#: Modules whose effects are sanctioned on the loop: the observability
#: layer is gated and buffered (spans/counters append to in-memory state;
#: the exporter flushes off the hot path), so its writes neither stall
#: the loop meaningfully nor race across contexts.
_ASYNC_SANCTIONED = (("obs",),)


@register_program
class EventLoopBlockingCall(ProgramRule):
    """ASYNC001: a synchronous may-block call reachable from the event loop.

    Loop context seeds at every ``async def`` and propagates through
    call/await/spawn edges; an executor hop (``asyncio.to_thread`` /
    ``run_in_executor``) breaks the propagation — that hop is the fix
    this rule asks for.  Blocking effects are the synchronous forms only
    (an awaited call is cooperative by construction): file/socket IO,
    ``time.sleep``, ``subprocess``, zero-argument ``.join()``, blocking
    ``.acquire()``, pathlib read/write.  Unresolved calls contribute no
    effect, so findings are under-approximate; the observability layer is
    sanctioned (buffered, gated).
    """

    name = "ASYNC001"
    severity = Severity.ERROR
    description = (
        "synchronous may-block call reachable from event-loop context "
        "without a to_thread/executor hop"
    )

    def check(self, pctx: ProgramContext) -> Iterator[Violation]:
        ctxs = pctx.async_contexts()
        for func in pctx.model.functions():
            if _module_has_segments(func.module, _ASYNC_SANCTIONED):
                continue
            loop_member = func.ref in ctxs.loop
            is_async_def = isinstance(func.node, ast.AsyncFunctionDef)
            for effect in pctx.effects.effects_of(func.ref).effects:
                if effect.kind != "blocking":
                    continue
                # Direct coroutine-body effects always count; effects of a
                # sync function count only when the *whole function* runs
                # on the loop (a nested sync helper inside an async def is
                # typically the to_thread payload, not loop code).
                if not (effect.in_async or (loop_member and not is_async_def)):
                    continue
                info = pctx.module_for(func)
                chain = ctxs.loop_path(func.ref) if loop_member else [func.ref]
                yield self.violation(
                    info,
                    effect.node,
                    f"{effect.detail} the event loop "
                    f"(reachable via {_chain_text(chain)}); hop off the "
                    "loop with await asyncio.to_thread(...) / "
                    "run_in_executor, or use the async API",
                )


@register_program
class AwaitUnderSyncLock(ProgramRule):
    """ASYNC002: an await while holding a synchronous (thread) lock.

    A plain ``with threading.Lock()`` held across an ``await`` keeps the
    lock for the whole suspension: any other coroutine (or executor
    thread) needing it then blocks the loop thread itself — the classic
    async-over-sync deadlock shape.  Awaits inside nested defs under the
    ``with`` are exempt (they run after the block exits).  Locks of
    *unknown* kind (a name containing "lock" that resolution cannot type)
    are held to the rule: a plain ``with`` is sync acquisition semantics.
    """

    name = "ASYNC002"
    severity = Severity.ERROR
    description = (
        "await while holding a synchronous lock (plain 'with'); the lock "
        "is held across the suspension"
    )

    def check(self, pctx: ProgramContext) -> Iterator[Violation]:
        locks = pctx.lock_analysis()
        for func in pctx.model.functions():
            info = pctx.module_for(func)
            for acq in locks.acquisitions.get(func.ref, []):
                if acq.is_async_with or acq.lock.kind == "async":
                    continue
                for await_node in locks.awaits_holding(acq):
                    yield self.violation(
                        info,
                        await_node,
                        f"await while holding sync lock {acq.lock.display} "
                        f"(acquired line {acq.node.lineno}); the lock stays "
                        "held across the suspension and can wedge the loop "
                        "— use asyncio.Lock with 'async with', or release "
                        "before awaiting",
                    )


@register_program
class LockOrderCycle(ProgramRule):
    """ASYNC003: a cycle in the lock acquisition-order graph.

    Lock A precedes lock B when B is acquired lexically inside A's
    ``with`` body or by a function (transitively) called while A is held
    (call/await edges; a spawned task or executor hop does not extend the
    hold).  A cycle means two tasks can each hold one lock and wait
    forever on the other.  Order edges ignore branch conditions, so a
    finding may be on two branches that never co-execute — that is what
    the justification convention is for.
    """

    name = "ASYNC003"
    severity = Severity.ERROR
    description = (
        "cycle in the lock acquisition-order graph (potential deadlock)"
    )

    def check(self, pctx: ProgramContext) -> Iterator[Violation]:
        locks = pctx.lock_analysis()
        for cycle in locks.cycles():
            func_ref, node, _how = cycle.witnesses[0]
            func = pctx.model.function(func_ref)
            if func is None:
                continue
            info = pctx.module_for(func)
            order = " -> ".join(
                locks.display_of(r) for r in (*cycle.locks, cycle.locks[0])
            )
            steps = "; ".join(how for _, _, how in cycle.witnesses)
            yield self.violation(
                info,
                node,
                f"lock-order cycle {order}: {steps}; pick one global "
                "acquisition order (or collapse the locks) to rule out "
                "deadlock",
            )


@register_program
class OrphanedCoroutine(ProgramRule):
    """ASYNC004: an unawaited coroutine or fire-and-forget task.

    Three shapes, all over the reaching-definitions fixpoint:

    * a bare-statement call to a known ``async def`` — the coroutine
      object is created and dropped; the body never runs;
    * a bare-statement ``asyncio.create_task(...)`` /
      ``ensure_future(...)`` — the task starts but nothing keeps a
      reference, so it can be garbage-collected mid-flight and its
      exception is swallowed;
    * a task/coroutine assigned to a local none of whose uses any
      definition reaches — assigned, then never awaited or referenced.

    Attribute targets (``self._task = ...``) are kept references and
    exempt; a use inside a nested def (closure) counts as consumption.
    Only calls that *resolve* to a known coroutine are flagged
    (under-approximate).
    """

    name = "ASYNC004"
    severity = Severity.ERROR
    description = (
        "unawaited coroutine or fire-and-forget task without a kept "
        "reference"
    )

    def check(self, pctx: ProgramContext) -> Iterator[Violation]:
        for func in pctx.model.functions():
            info = pctx.module_for(func)
            yield from self._check_function(pctx, info, func)

    @staticmethod
    def _is_task_spawn(info: ModuleInfo, call: ast.Call) -> bool:
        chain = info.ctx.resolve_call_chain(call.func)
        if chain and chain[0] == "asyncio" and chain[-1] in (
            "create_task", "ensure_future",
        ):
            return True
        return isinstance(call.func, ast.Attribute) and call.func.attr in (
            "create_task", "ensure_future",
        )

    @staticmethod
    def _coroutine_callee(
        pctx: ProgramContext, info: ModuleInfo, func: FunctionInfo, call: ast.Call
    ) -> "FunctionInfo | None":
        ref, _dotted = _resolve_callee(pctx.model, info, func, call.func)
        if ref is None:
            return None
        callee = pctx.model.function(ref)
        if callee is not None and isinstance(callee.node, ast.AsyncFunctionDef):
            return callee
        return None

    def _check_function(
        self, pctx: ProgramContext, info: ModuleInfo, func: FunctionInfo
    ) -> Iterator[Violation]:
        rd: "ReachingDefs | None" = None
        for node in ast.walk(func.node):
            if not isinstance(node, ast.stmt):
                continue
            if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
                call = node.value
                if self._is_task_spawn(info, call):
                    yield self.violation(
                        info,
                        call,
                        "task spawned without keeping a reference; it can "
                        "be garbage-collected mid-flight and its exception "
                        "is swallowed — keep the handle (self._task = ..., "
                        "or a task set) and await it on shutdown",
                    )
                    continue
                callee = self._coroutine_callee(pctx, info, func, call)
                if callee is not None and not isinstance(
                    info.ctx.parent(call), ast.Await
                ):
                    yield self.violation(
                        info,
                        call,
                        f"coroutine {callee.qualname}(...) is never awaited; "
                        "the body never runs — await it or hand it to "
                        "asyncio.create_task",
                    )
                continue
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            value = node.value
            if not isinstance(value, ast.Call):
                continue
            is_spawn = self._is_task_spawn(info, value)
            callee = (
                None if is_spawn
                else self._coroutine_callee(pctx, info, func, value)
            )
            if not is_spawn and callee is None:
                continue
            if rd is None:
                rd = reaching_definitions(func.node)
            definition = Definition(
                name=target.id, lineno=node.lineno, stmt_id=id(node), value=value
            )
            if self._definition_consumed(info, func, rd, definition):
                continue
            what = (
                "task" if is_spawn
                else f"coroutine {callee.qualname}(...)" if callee is not None
                else "coroutine"
            )
            yield self.violation(
                info,
                value,
                f"{what} assigned to {target.id!r} but no use is reached "
                "by this definition; it is never awaited — await it, "
                "gather it, or keep the handle somewhere that outlives "
                "this function",
            )

    @staticmethod
    def _definition_consumed(
        info: ModuleInfo,
        func: FunctionInfo,
        rd: ReachingDefs,
        definition: Definition,
    ) -> bool:
        for node in ast.walk(func.node):
            if not isinstance(node, ast.Name) or not isinstance(node.ctx, ast.Load):
                continue
            if node.id != definition.name:
                continue
            stmt: "ast.stmt | None" = None
            for anc in (node, *info.ctx.ancestors(node)):
                if isinstance(anc, ast.stmt) and id(anc) in rd.before:
                    stmt = anc
                    break
                if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if anc is not func.node:
                        # Closure use inside a nested def: conservatively
                        # treat the handle as consumed.
                        return True
            if stmt is not None and definition in rd.at(stmt, definition.name):
                return True
        return False


@register_program
class LoopThreadSharedWrite(ProgramRule):
    """RACE003: a global written unguarded from both loop and thread context.

    The GIL serializes bytecodes, not invariants: a loop-side coroutine
    and an executor-thread function both writing the same module global
    without a lock interleave arbitrarily (torn read-modify-write,
    lost updates).  Flagged at the global's definition, naming one writer
    from each side.  Lock-guarded writes and the observability layer
    (commutative merge-monoid counters) are exempt.
    """

    name = "RACE003"
    severity = Severity.ERROR
    description = (
        "module-level state written without a lock from both event-loop "
        "and executor-thread context"
    )

    def check(self, pctx: ProgramContext) -> Iterator[Violation]:
        ctxs = pctx.async_contexts()
        loop_writers: "dict[str, list[str]]" = {}
        thread_writers: "dict[str, list[str]]" = {}
        for func in pctx.model.functions():
            if _module_has_segments(func.module, _ASYNC_SANCTIONED):
                continue
            is_async_def = isinstance(func.node, ast.AsyncFunctionDef)
            loop_side = func.ref in ctxs.loop
            thread_side = func.ref in ctxs.thread
            for effect in pctx.effects.effects_of(func.ref).effects:
                if (
                    effect.kind != "global-write"
                    or effect.target is None
                    or effect.lock_guarded
                ):
                    continue
                if effect.in_async or (loop_side and not is_async_def):
                    loop_writers.setdefault(effect.target.ref, []).append(func.ref)
                if thread_side and not effect.in_async:
                    thread_writers.setdefault(effect.target.ref, []).append(func.ref)
        for gref in sorted(set(loop_writers) & set(thread_writers)):
            module, _, name = gref.partition(":")
            info = pctx.model.modules.get(module)
            gvar = info.globals.get(name) if info is not None else None
            if info is None or gvar is None:
                continue
            loop_w = sorted(loop_writers[gref])[0]
            thread_w = sorted(thread_writers[gref])[0]
            yield self.violation(
                info,
                gvar.node,
                f"{module}.{name} is written without a lock from event-loop "
                f"context ({_chain_text([loop_w])}) and executor-thread "
                f"context ({_chain_text([thread_w])}); the interleaving is "
                "unsynchronized — guard both writes with one threading.Lock "
                "or confine the state to a single context",
            )


# ---------------------------------------------------------------------------
# SUP — suppression hygiene (the eager-failure extension)
# ---------------------------------------------------------------------------

@register_program
class UnjustifiedSuppression(ProgramRule):
    """SUP001: a program-rule noqa without a ``-- justification``.

    Mirrors the runtime contract checker's eager :class:`ContractViolation`
    failure: an unexplained suppression of a whole-program finding is
    itself an error, the suppression is *ignored* (the underlying finding
    still reports), and SUP001 findings can never be baselined.
    """

    name = "SUP001"
    severity = Severity.ERROR
    description = (
        "suppression of a whole-program rule without a '-- why' "
        "justification (the noqa is ignored)"
    )

    def check(self, pctx: ProgramContext) -> Iterator[Violation]:
        program_rules = set(PROGRAM_RULES)
        for module_name in sorted(pctx.model.modules):
            info = pctx.model.modules[module_name]
            for lineno in sorted(info.ctx.noqa):
                names = info.ctx.noqa[lineno] & program_rules
                if not names or info.ctx.is_suppression_justified(lineno):
                    continue
                listed = ", ".join(sorted(names))
                yield Violation(
                    path=info.path,
                    line=lineno,
                    col=0,
                    rule=self.name,
                    severity=self.severity,
                    message=(
                        f"noqa[{listed}] lacks a '-- justification'; "
                        "program-rule suppressions must explain the "
                        "sanctioned design (suppression ignored)"
                    ),
                )
