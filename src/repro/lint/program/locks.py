"""Lock identification and lock-order analysis for the async tier.

Deadlock potential is a *global* property — function A takes lock X then
calls into B which takes Y, while C takes Y then X — so this pass lives in
the whole-program package, layered on the kinded call graph:

* **lock discovery** — module-level globals and ``self.<attr>`` instance
  attributes bound to ``asyncio.Lock()`` / ``threading.Lock()`` (and the
  RLock/Condition/Semaphore variants), each with a program-wide identity
  (``module:NAME`` or ``module:Class.attr``) and a sync/async kind;
* **acquisitions** — every ``with`` / ``async with`` whose context
  expression resolves to a discovered lock (or, fallback, to a name
  containing "lock": unknown kind, still ordered);
* **order edges** — lock A precedes lock B when B is acquired lexically
  inside A's ``with`` body, or by any function transitively called from
  it (``call``/``await`` edges only: a spawned task does not run while
  the spawner still holds the lock, and an executor hop leaves the
  thread);
* **cycles** — elementary cycles of length >= 2 in that order graph are
  the ASYNC003 findings; awaits lexically under a plain (sync) ``with``
  are the ASYNC002 findings.

Like the rest of the program tier this is under-approximate on dynamic
dispatch (an unresolved call contributes no held-lock flow) and
over-approximate on paths (the order edge ignores branch conditions), and
the rules document that bias.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field

from repro.lint.program.callgraph import CallGraph
from repro.lint.program.symbols import FunctionInfo, ModuleInfo, ProgramModel

__all__ = ["LockInfo", "Acquisition", "LockCycle", "LockAnalysis"]


#: Constructor names of the asyncio synchronization primitives.
_ASYNC_LOCK_CTORS = frozenset({"Lock", "Condition", "Semaphore", "BoundedSemaphore"})

#: Modules whose lock constructors block the calling *thread*.
_SYNC_LOCK_MODULES = frozenset({"threading", "multiprocessing"})
_SYNC_LOCK_CTORS = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}
)

#: Edge kinds across which a held lock stays held in the caller's frame.
_HELD_EDGE_KINDS = frozenset({"call", "await"})

#: Safety valves: the order graph of a hand-written codebase is tiny, but
#: cycle enumeration is exponential in the worst case.
_MAX_CYCLES = 32
_MAX_CYCLE_LEN = 16


@dataclass(frozen=True)
class LockInfo:
    """One discovered lock, with program-wide identity and kind."""

    ref: str  # "module:NAME" or "module:Class.attr"
    kind: str  # "async" | "sync" | "unknown"

    @property
    def display(self) -> str:
        """Short human-readable name (qualified part of the ref)."""
        return self.ref.partition(":")[2] or self.ref


@dataclass
class Acquisition:
    """One ``with`` / ``async with`` acquiring a discovered lock."""

    lock: LockInfo
    node: "ast.With | ast.AsyncWith"
    func: FunctionInfo
    is_async_with: bool


@dataclass
class LockCycle:
    """One lock-order cycle, with the witness of its first edge."""

    locks: "tuple[str, ...]"  # lock refs, in acquisition order
    #: (func ref, witness node, how B came to be ordered after A) per edge.
    witnesses: "list[tuple[str, ast.AST, str]]"


def _lock_ctor_kind(info: ModuleInfo, value: "ast.expr | None") -> "str | None":
    if not isinstance(value, ast.Call):
        return None
    chain = info.ctx.resolve_call_chain(value.func)
    if not chain or len(chain) < 2:
        return None
    if chain[0] == "asyncio" and chain[-1] in _ASYNC_LOCK_CTORS:
        return "async"
    if chain[0] in _SYNC_LOCK_MODULES and chain[-1] in _SYNC_LOCK_CTORS:
        return "sync"
    return None


class LockAnalysis:
    """Lock discovery, acquisitions, transitive holds, and the order graph."""

    def __init__(self, model: ProgramModel, graph: CallGraph) -> None:
        self.model = model
        self.graph = graph
        #: lock ref -> discovered lock.
        self.locks: "dict[str, LockInfo]" = {}
        #: function ref -> its lexical acquisitions, in source order.
        self.acquisitions: "dict[str, list[Acquisition]]" = {}
        #: function ref -> lock refs it (or any transitive callee) acquires.
        self.held: "dict[str, set[str]]" = {}
        #: (lock A, lock B) -> (func ref, witness node, description).
        self.order_edges: "dict[tuple[str, str], tuple[str, ast.AST, str]]" = {}
        self._discover()
        self._collect_acquisitions()
        self._close_held()
        self._build_order_edges()

    # -- discovery -----------------------------------------------------------
    def _discover(self) -> None:
        for module_name in sorted(self.model.modules):
            info = self.model.modules[module_name]
            for name in sorted(info.globals):
                gvar = info.globals[name]
                value = getattr(gvar.node, "value", None)
                kind = _lock_ctor_kind(info, value)
                if kind is not None:
                    self.locks[gvar.ref] = LockInfo(ref=gvar.ref, kind=kind)
            for qualname in sorted(info.functions):
                func = info.functions[qualname]
                if func.class_name is None or func.name != "__init__":
                    continue
                for node in ast.walk(func.node):
                    if not isinstance(node, ast.Assign):
                        continue
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            kind = _lock_ctor_kind(info, node.value)
                            if kind is not None:
                                ref = f"{module_name}:{func.class_name}.{target.attr}"
                                self.locks[ref] = LockInfo(ref=ref, kind=kind)

    # -- acquisitions --------------------------------------------------------
    def _lock_for_expr(
        self, info: ModuleInfo, func: FunctionInfo, expr: ast.expr
    ) -> "LockInfo | None":
        chain = info.ctx.resolve_call_chain(expr)
        if not chain:
            return None
        if chain[0] in ("self", "cls") and func.class_name and len(chain) == 2:
            ref = f"{info.name}:{func.class_name}.{chain[1]}"
            known = self.locks.get(ref)
            if known is not None:
                return known
            if "lock" in chain[1].lower():
                return LockInfo(ref=ref, kind="unknown")
            return None
        resolution = self.model.resolve_in_module(info, expr)
        if (
            resolution is not None
            and resolution.kind == "global"
            and resolution.global_var is not None
        ):
            ref = resolution.global_var.ref
            known = self.locks.get(ref)
            if known is not None:
                return known
            if "lock" in resolution.global_var.name.lower():
                return LockInfo(ref=ref, kind="unknown")
            return None
        if len(chain) == 1 and "lock" in chain[0].lower():
            # A function-local lock (parameter or local binding): identity
            # is per-function — enough for lexical nesting, invisible to
            # the interprocedural closure by design.
            return LockInfo(ref=f"{info.name}:{func.qualname}.<{chain[0]}>", kind="unknown")
        return None

    def _collect_acquisitions(self) -> None:
        for func in self.model.functions():
            info = self.model.modules[func.module]
            acqs: "list[Acquisition]" = []
            for node in ast.walk(func.node):
                if not isinstance(node, (ast.With, ast.AsyncWith)):
                    continue
                for item in node.items:
                    lock = self._lock_for_expr(info, func, item.context_expr)
                    if lock is not None:
                        acqs.append(
                            Acquisition(
                                lock=lock,
                                node=node,
                                func=func,
                                is_async_with=isinstance(node, ast.AsyncWith),
                            )
                        )
            acqs.sort(key=lambda a: (a.node.lineno, a.node.col_offset))
            self.acquisitions[func.ref] = acqs

    # -- transitive holds ----------------------------------------------------
    def _close_held(self) -> None:
        direct = {
            ref: {a.lock.ref for a in acqs}
            for ref, acqs in self.acquisitions.items()
        }
        self.held = {ref: set(locks) for ref, locks in direct.items()}
        changed = True
        while changed:
            changed = False
            for ref in self.held:
                for callee in self.graph.callees_via(ref, _HELD_EDGE_KINDS):
                    extra = self.held.get(callee, set()) - self.held[ref]
                    if extra:
                        self.held[ref] |= extra
                        changed = True

    # -- order edges ---------------------------------------------------------
    def _build_order_edges(self) -> None:
        for func in self.model.functions():
            acqs = self.acquisitions.get(func.ref, [])
            if not acqs:
                continue
            for outer in acqs:
                inside = {id(n) for n in ast.walk(outer.node)} - {id(outer.node)}
                # Lexical nesting: an inner with under the outer's body.
                for inner in acqs:
                    if id(inner.node) in inside and inner.lock.ref != outer.lock.ref:
                        self.order_edges.setdefault(
                            (outer.lock.ref, inner.lock.ref),
                            (
                                func.ref,
                                inner.node,
                                f"{func.qualname} nests {inner.lock.display} "
                                f"inside {outer.lock.display}",
                            ),
                        )
                # Interprocedural: a call under the with body into a
                # function that (transitively) acquires another lock.
                for site in self.graph.sites.get(func.ref, []):
                    if site.callee is None or site.kind not in _HELD_EDGE_KINDS:
                        continue
                    if id(site.node) not in inside:
                        continue
                    for lock_ref in sorted(self.held.get(site.callee, set())):
                        if lock_ref == outer.lock.ref:
                            continue
                        callee_name = site.callee.partition(":")[2]
                        self.order_edges.setdefault(
                            (outer.lock.ref, lock_ref),
                            (
                                func.ref,
                                site.node,
                                f"{func.qualname} holds {outer.lock.display} "
                                f"while calling {callee_name}, which acquires "
                                f"{self.display_of(lock_ref)}",
                            ),
                        )

    def display_of(self, lock_ref: str) -> str:
        """Short human-readable name of a lock ref."""
        return lock_ref.partition(":")[2] or lock_ref

    # -- queries -------------------------------------------------------------
    def awaits_holding(self, acq: Acquisition) -> "list[ast.Await]":
        """Awaits lexically under *acq*'s with body (nested defs excluded)."""
        out: "list[ast.Await]" = []
        stack: "deque[ast.AST]" = deque(acq.node.body)
        while stack:
            node = stack.popleft()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # a nested def's awaits run later, lock released
            if isinstance(node, ast.Await):
                out.append(node)
            stack.extend(ast.iter_child_nodes(node))
        out.sort(key=lambda n: (n.lineno, n.col_offset))
        return out

    def cycles(self) -> "list[LockCycle]":
        """Elementary lock-order cycles (length >= 2), deterministically."""
        adjacency: "dict[str, list[str]]" = {}
        for a, b in sorted(self.order_edges):
            adjacency.setdefault(a, []).append(b)
        found: "list[LockCycle]" = []
        seen_keys: "set[tuple[str, ...]]" = set()

        def visit(start: str, current: str, path: "list[str]") -> None:
            if len(found) >= _MAX_CYCLES or len(path) > _MAX_CYCLE_LEN:
                return
            for nxt in adjacency.get(current, []):
                if nxt == start and len(path) >= 2:
                    key = tuple(path)
                    if key not in seen_keys:
                        seen_keys.add(key)
                        witnesses = [
                            self.order_edges[(path[i], path[(i + 1) % len(path)])]
                            for i in range(len(path))
                        ]
                        found.append(LockCycle(locks=key, witnesses=witnesses))
                elif nxt > start and nxt not in path:
                    # Restricting intermediate nodes to > start makes each
                    # cycle's minimal lock its unique enumeration root.
                    visit(start, nxt, [*path, nxt])

        for start in sorted(adjacency):
            visit(start, start, [start])
        return found
