"""Process-resident trace store keyed by content digest.

``EvaluationRuntime`` used to pickle the full numpy-backed :class:`Trace`
into every pool job, so a batch fan-out over N configurations shipped N
copies of the same 100k-access trace through the job pipes.  The store
breaks that scaling: traces are registered once per process under their
:meth:`~repro.workloads.trace.Trace.content_digest`, and job payloads carry
the digest string instead of the arrays.

How the store is populated depends on the pool mode:

* **inline** (``max_workers=0``) — jobs run in the registering process; the
  parent-side :func:`register` is all that is needed.
* **fork workers** — children inherit the parent's store at ``fork()``;
  registration in the parent before the batch covers every worker,
  including crash replacements (which are forked fresh from the parent).
* **spawn workers** — nothing is inherited, so the pool ships each trace
  once per worker as a setup message (:attr:`EvaluationPool.worker_setup`)
  that calls :func:`register` worker-side.

The store is deliberately module-level (plain dict, no locking): each
process has exactly one, worker processes are single-threaded, and the
parent only mutates it between batches.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workloads.trace import Trace

__all__ = ["register", "resolve", "is_registered", "clear", "size"]

_TRACES: "dict[str, Trace]" = {}  # repro: noqa[RACE002] -- per-process store by design: workers populate their own copy via worker_setup; supervisor-side clear() only runs between evaluations


def register(trace: "Trace", digest: "str | None" = None) -> str:
    """Register *trace* under its content digest; returns the digest.

    Passing a precomputed *digest* skips re-hashing (the setup message path
    ships the digest alongside the trace so workers don't pay for SHA-256
    on arrays the parent already hashed).
    """
    if digest is None:
        digest = trace.content_digest()
    _TRACES[digest] = trace  # repro: noqa[RACE001] -- single-threaded per process: each worker registers into its own _TRACES before its job loop starts
    return digest


def resolve(digest: str) -> "Trace":
    """The trace registered under *digest*.

    Raises :class:`KeyError` with a diagnosis when the digest is unknown —
    in a worker this means the registration setup message was lost, which
    the pool's retry machinery treats as a retryable failure.
    """
    try:
        return _TRACES[digest]
    except KeyError:
        raise KeyError(
            f"trace {digest[:12]}... not registered in this process "
            f"({len(_TRACES)} registered); worker setup may not have run"
        ) from None


def is_registered(digest: str) -> bool:
    """Whether *digest* is present in this process's store."""
    return digest in _TRACES


def clear() -> None:
    """Drop every registered trace (tests / long-lived parents)."""
    _TRACES.clear()


def size() -> int:
    """Number of traces currently registered in this process."""
    return len(_TRACES)
