"""Measurement validation: decide whether a report is safe to act on.

The LPM algorithm and the online controller are measurement-driven loops —
one NaN, one dropped interval, or one truncated trace can misclassify a
case and drive the system into reconfiguration thrashing.  These guards sit
between the analyzer and every decision point: a measurement that fails
them raises :class:`~repro.runtime.errors.MeasurementError`, which the
supervised evaluation path retries and the online controller rejects while
holding the last-good configuration.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.runtime.errors import MeasurementError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.lpm import LPMRReport
    from repro.sim.stats import HierarchyStats

__all__ = ["ensure_finite_stats", "ensure_finite_report", "checked_report"]


def _require_finite(name: str, value: float) -> None:
    if not math.isfinite(value):
        raise MeasurementError(f"non-finite measurement: {name} = {value}")


def ensure_finite_stats(
    stats: "HierarchyStats", *, expected_instructions: "int | None" = None
) -> "HierarchyStats":
    """Validate a :class:`HierarchyStats` before it reaches a decision.

    Rejects (with :class:`MeasurementError`):

    * non-finite CPI, CPI_exe, f_mem, per-layer C-AMAT or LPMR values;
    * an overlap ratio outside ``[0, 1)``;
    * an *empty* L1 interval report while the trace clearly issued memory
      accesses (``f_mem > 0``) — the signature of dropped intervals;
    * a measurement whose instruction count disagrees with
      *expected_instructions* — the signature of a truncated trace.

    Returns *stats* unchanged so the call composes inline.
    """
    for name in ("cpi", "cpi_exe", "f_mem"):
        _require_finite(name, float(getattr(stats, name)))
    for layer_name in ("l1", "l2", "mem"):
        layer = getattr(stats, layer_name)
        _require_finite(f"{layer_name}.camat", float(layer.camat))
        _require_finite(f"{layer_name}.hit_time", float(layer.hit_time))
    for name in ("lpmr1", "lpmr2", "lpmr3"):
        _require_finite(name, float(getattr(stats, name)))
    overlap = float(stats.overlap_ratio_cm)
    _require_finite("overlap_ratio_cm", overlap)
    if not 0.0 <= overlap < 1.0:
        raise MeasurementError(f"overlap_ratio_cm out of range: {overlap}")
    if stats.f_mem > 0.0 and stats.l1.accesses == 0:
        raise MeasurementError(
            "empty L1 interval report for a window with memory accesses "
            f"(f_mem={stats.f_mem:.3f})"
        )
    if expected_instructions is not None and stats.n_instructions != expected_instructions:
        raise MeasurementError(
            f"measurement covers {stats.n_instructions} instructions, "
            f"expected {expected_instructions} (truncated trace?)"
        )
    return stats


def ensure_finite_report(report: "LPMRReport") -> "LPMRReport":
    """Validate an :class:`LPMRReport` snapshot (finite, usable thresholds)."""
    for name in (
        "lpmr1", "lpmr2", "lpmr3", "camat1", "camat2", "camat3",
        "mr1", "mr2", "f_mem", "cpi_exe", "eta_combined",
        "hit_time1", "hit_concurrency1",
    ):
        _require_finite(name, float(getattr(report, name)))
    overlap = float(report.overlap_ratio_cm)
    _require_finite("overlap_ratio_cm", overlap)
    if not 0.0 <= overlap < 1.0:
        raise MeasurementError(f"overlap_ratio_cm out of range: {overlap}")
    if report.cpi_exe <= 0.0:
        raise MeasurementError(f"cpi_exe must be > 0, got {report.cpi_exe}")
    return report


def checked_report(
    stats: "HierarchyStats", *, expected_instructions: "int | None" = None
) -> "LPMRReport":
    """Validate *stats* and return its (validated) LPMR report.

    The one-stop entry used by the supervised measurement path: any
    corruption surfaces as :class:`MeasurementError` here, never as a
    mysterious ``ValueError`` deep inside threshold arithmetic.
    """
    ensure_finite_stats(stats, expected_instructions=expected_instructions)
    try:
        report = stats.lpmr_report()
    except (ValueError, TypeError, ZeroDivisionError) as exc:
        raise MeasurementError(f"could not assemble LPMR report: {exc}") from exc
    return ensure_finite_report(report)
