"""Supervised parallel evaluation pool.

Design-space exploration and benchmark profiling spend hundreds of
independent ``simulate_and_measure`` evaluations; one hung or crashed
evaluation must not kill the run.  :class:`EvaluationPool` executes a batch
of picklable jobs across worker processes under supervision:

* **per-job timeouts** — each job is dispatched to exactly one worker over
  that worker's private pipe, so when the deadline passes the supervisor
  knows precisely which process to kill;
* **bounded retries with exponential backoff + jitter** — a failed attempt
  (exception, timeout, or crash) is requeued after
  ``base * factor**(failures-1) * (1 + jitter*u)`` seconds; after
  ``max_retries`` retries the job's last error becomes its result;
* **worker-crash recovery** — a worker that dies (killed, segfaulted,
  ``os._exit``) is detected, its job is charged a
  :class:`~repro.runtime.errors.WorkerCrashed` failure, and a fresh worker
  takes its slot.

``max_workers=0`` selects the *inline* mode: same retry/backoff semantics,
executed in-process with no pickling or process overhead (timeouts are not
enforceable inline and are ignored).  This is the default, so library code
can route every evaluation through the pool without forcing process
orchestration on small runs.
"""

from __future__ import annotations

import heapq
import random
import signal
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from multiprocessing import get_context

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.runtime.errors import ConfigError, EvaluationTimeout, WorkerCrashed, is_retryable
from repro.util.rng import derive_seed
from repro.util.validation import check_int, check_non_negative

__all__ = ["RetryPolicy", "PoolConfig", "Job", "JobResult", "EvaluationPool"]

#: Sentinel job key marking a fire-and-forget worker setup message: the
#: worker runs the callable and sends no reply (so setup never occupies the
#: supervisor's result accounting).  Sent to every worker right after it
#: starts — including crash replacements — before any job can reach it
#: (the pipe is FIFO).
_SETUP_KEY = "__pool_worker_setup__"


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and jitter."""

    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.25

    def __post_init__(self) -> None:
        check_int("max_retries", self.max_retries, minimum=0)
        check_non_negative("backoff_base", self.backoff_base)
        if self.backoff_factor < 1.0:
            raise ConfigError(f"backoff_factor must be >= 1, got {self.backoff_factor}")
        check_non_negative("backoff_jitter", self.backoff_jitter)

    def delay(self, failures: int, rng: random.Random) -> float:
        """Backoff before the retry following failure number *failures*."""
        base = self.backoff_base * self.backoff_factor ** (failures - 1)
        return base * (1.0 + self.backoff_jitter * rng.random())


@dataclass(frozen=True)
class PoolConfig:
    """How a batch of jobs is executed and supervised."""

    #: Worker process count; 0 runs jobs inline in the calling process.
    max_workers: int = 0
    #: Per-attempt deadline in seconds (None disables; ignored inline).
    timeout_s: "float | None" = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Seed for the backoff-jitter streams (one derived stream per job key).
    seed: int = 0
    #: multiprocessing start method; None picks "fork" when available.
    start_method: "str | None" = None

    def __post_init__(self) -> None:
        check_int("max_workers", self.max_workers, minimum=0)
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigError(f"timeout_s must be > 0, got {self.timeout_s}")


@dataclass(frozen=True)
class Job:
    """One unit of work: a picklable callable plus its arguments."""

    key: str
    fn: Callable
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    #: When set, the pool passes ``_attempt=<n>`` (1-based) to *fn*, so
    #: stochastic stages (e.g. fault injection) draw fresh randomness per
    #: retry instead of failing identically forever.
    pass_attempt: bool = False


@dataclass
class JobResult:
    """Outcome of one job after supervision."""

    key: str
    value: object = None
    error: "BaseException | None" = None
    attempts: int = 0
    #: Total backoff delay scheduled between this job's attempts.
    waited_s: float = 0.0
    timeouts: int = 0
    crashes: int = 0

    @property
    def ok(self) -> bool:
        """Whether the job eventually produced a value."""
        return self.error is None


class _JobState:
    """Supervisor-side bookkeeping for one job."""

    __slots__ = ("job", "failures", "waited_s", "timeouts", "crashes", "last_error", "rng")

    def __init__(self, job: Job, rng: random.Random) -> None:
        self.job = job
        self.failures = 0
        self.waited_s = 0.0
        self.timeouts = 0
        self.crashes = 0
        self.last_error: "BaseException | None" = None
        self.rng = rng

    def attempt_kwargs(self) -> dict:
        kwargs = dict(self.job.kwargs)
        if self.job.pass_attempt:
            kwargs["_attempt"] = self.failures + 1
        return kwargs

    def result(self, value: object = None, *, error: "BaseException | None" = None) -> JobResult:
        return JobResult(
            key=self.job.key,
            value=value,
            error=error,
            attempts=self.failures + (1 if error is None else 0),
            waited_s=self.waited_s,
            timeouts=self.timeouts,
            crashes=self.crashes,
        )


def _worker_snapshot() -> "dict | None":
    """The worker's metric snapshot to ship with a result (None when off).

    Reset after snapshotting so each shipped payload carries exactly the
    metrics of one attempt; the parent merges them in arrival order, which
    is safe because snapshot merge is commutative (:mod:`repro.obs.metrics`).
    """
    if not obs_metrics.metrics_enabled():
        return None
    registry = obs_metrics.get_registry()
    if registry.is_empty():
        return None
    return registry.snapshot_and_reset()


def _worker_main(conn) -> None:
    """Worker loop: receive ``(key, fn, args, kwargs)``, send
    ``(kind, payload, metrics_snapshot)``."""
    # A terminal Ctrl-C delivers SIGINT to the whole foreground process
    # group; leave interrupt handling (and worker teardown) to the
    # supervisor rather than spraying one traceback per worker.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    # A forked worker inherits the parent's accumulated registry; start
    # from the merge identity so shipped snapshots count each attempt once.
    if obs_metrics.metrics_enabled():
        obs_metrics.get_registry().reset()
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if msg is None:
            return
        key, fn, args, kwargs = msg
        if key == _SETUP_KEY:
            # Fire-and-forget setup (e.g. trace-store registration); a
            # failure here surfaces later as job errors, which the
            # supervisor's normal retry path reports with taxonomy intact.
            try:
                fn(*args, **kwargs)
            except Exception:  # repro: noqa[ERR001] -- no reply channel for setup; dependent jobs fail loudly instead
                pass
            continue
        try:
            with obs_trace.span("pool.attempt", key=key):
                payload = ("ok", fn(*args, **kwargs), _worker_snapshot())
        except Exception as exc:  # repro: noqa[ERR001] -- designated transport boundary: the exception (taxonomy intact) is pickled to the supervisor, which re-classifies it
            payload = ("err", exc, _worker_snapshot())
        try:
            conn.send(payload)
        except Exception as exc:  # repro: noqa[ERR001] -- pickling failure of the payload itself; reported as an error result, nothing is swallowed
            # The value (or the exception) did not pickle; report that
            # instead of dying and looking like a crash.
            try:
                conn.send(("err", RuntimeError(f"result not transferable: {exc}"), None))  # repro: noqa[ERR002] -- crosses the process boundary before the supervisor re-raises; must stay a stdlib type that always unpickles
            except Exception:  # repro: noqa[ERR001] -- pipe gone mid-report; the supervisor's liveness sweep charges a WorkerCrashed
                return


class _Worker:
    """One supervised worker process with a private duplex pipe."""

    __slots__ = ("proc", "conn", "state", "deadline")

    def __init__(self, ctx, setup: "Sequence[tuple[Callable, tuple]]" = ()) -> None:
        self.conn, child = ctx.Pipe(duplex=True)
        self.proc = ctx.Process(target=_worker_main, args=(child,), daemon=True)
        self.proc.start()
        child.close()
        self.state: "_JobState | None" = None
        self.deadline: "float | None" = None
        for fn, args in setup:
            self.conn.send((_SETUP_KEY, fn, args, {}))

    def assign(self, state: _JobState, timeout_s: "float | None") -> None:
        self.conn.send(
            (state.job.key, state.job.fn, state.job.args, state.attempt_kwargs())
        )
        self.state = state
        self.deadline = (time.monotonic() + timeout_s) if timeout_s else None

    def release(self) -> "_JobState | None":
        state, self.state, self.deadline = self.state, None, None
        return state

    def stop(self, *, kill: bool = False) -> None:
        if kill:
            self.proc.kill()
        else:
            try:
                self.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        self.proc.join(timeout=2.0)
        if self.proc.is_alive():
            self.proc.kill()
            self.proc.join(timeout=2.0)
        self.conn.close()


class EvaluationPool:
    """Run a batch of :class:`Job`\\ s under the configured supervision.

    Counters (``retries``, ``timeouts``, ``worker_restarts``) accumulate
    across :meth:`run` calls on the same pool instance, so a caller issuing
    several batches can report one totals line at the end.
    """

    def __init__(self, config: "PoolConfig | None" = None) -> None:
        self.config = config if config is not None else PoolConfig()
        self.retries = 0
        self.timeouts = 0
        self.worker_restarts = 0
        #: ``(fn, args)`` pairs sent to every worker as fire-and-forget
        #: setup messages right after it starts (crash replacements
        #: included).  Callers use this to make per-process state — e.g.
        #: the trace store — resident once per worker instead of once per
        #: job.  Only needed under ``spawn``; forked workers inherit the
        #: parent's process state (see :meth:`effective_start_method`).
        self.worker_setup: "list[tuple[Callable, tuple]]" = []

    # -- public API ---------------------------------------------------------
    def run(
        self,
        jobs: Sequence[Job],
        *,
        on_error: str = "raise",
        on_result: "Callable[[JobResult], None] | None" = None,
    ) -> dict[str, JobResult]:
        """Execute *jobs*; returns ``{key: JobResult}``.

        ``on_error="raise"`` re-raises the last error of the first job that
        exhausted its retries (after all workers shut down cleanly);
        ``on_error="keep"`` returns failed jobs with ``result.error`` set.
        ``on_result`` is invoked the moment each job reaches a terminal
        result (success or final failure) — callers use it to checkpoint
        completed work before the batch as a whole finishes.
        """
        if on_error not in ("raise", "keep"):
            raise ConfigError(f"on_error must be 'raise' or 'keep', got {on_error!r}")
        seen: set[str] = set()
        for job in jobs:
            if job.key in seen:
                raise ConfigError(f"duplicate job key {job.key!r}")
            seen.add(job.key)
        states = [
            _JobState(job, random.Random(derive_seed(self.config.seed, "backoff", job.key)))
            for job in jobs
        ]
        if self.config.max_workers <= 0:
            results = self._run_inline(states, on_result)
        else:
            results = self._run_supervised(states, on_result)
        if on_error == "raise":
            for state in states:  # deterministic order: first submitted first
                result = results[state.job.key]
                if result.error is not None:
                    raise result.error
        return results

    @staticmethod
    def _finish(
        results: dict[str, JobResult],
        result: JobResult,
        on_result: "Callable[[JobResult], None] | None",
    ) -> None:
        results[result.key] = result
        if obs_metrics.metrics_enabled():
            reg = obs_metrics.get_registry()
            reg.counter("pool.jobs_ok" if result.ok else "pool.jobs_failed").inc()
        if obs_trace.tracing_enabled():
            obs_trace.event(
                "pool.job", key=result.key, ok=result.ok,
                attempts=result.attempts, timeouts=result.timeouts,
                crashes=result.crashes, waited_s=round(result.waited_s, 6),
            )
        if on_result is not None:
            on_result(result)

    @staticmethod
    def _count_failure(error: BaseException) -> None:
        """Parent-side failure counters (worker snapshots die with crashes)."""
        if not obs_metrics.metrics_enabled():
            return
        reg = obs_metrics.get_registry()
        reg.counter("pool.failed_attempts").inc()
        if isinstance(error, EvaluationTimeout):
            reg.counter("pool.timeouts").inc()
        if isinstance(error, WorkerCrashed):
            reg.counter("pool.crashes").inc()

    # -- inline mode ---------------------------------------------------------
    def _run_inline(
        self,
        states: "list[_JobState]",
        on_result: "Callable[[JobResult], None] | None",
    ) -> dict[str, JobResult]:
        results: dict[str, JobResult] = {}
        policy = self.config.retry
        for state in states:
            while True:
                try:
                    with obs_trace.span(
                        "pool.attempt", key=state.job.key, attempt=state.failures + 1
                    ):
                        value = state.job.fn(*state.job.args, **state.attempt_kwargs())
                except Exception as exc:  # repro: noqa[ERR001] -- supervision boundary: the error becomes the job's typed result (or is re-raised by run()); KeyboardInterrupt still propagates
                    state.failures += 1
                    state.last_error = exc
                    self._count_failure(exc)
                    if not is_retryable(exc) or state.failures > policy.max_retries:
                        self._finish(results, state.result(error=exc), on_result)
                        break
                    self.retries += 1
                    if obs_metrics.metrics_enabled():
                        obs_metrics.get_registry().counter("pool.retries").inc()
                    delay = policy.delay(state.failures, state.rng)
                    state.waited_s += delay
                    time.sleep(delay)
                else:
                    self._finish(results, state.result(value), on_result)
                    break
        return results

    # -- supervised (multi-process) mode -------------------------------------
    def _start_method(self) -> str:
        if self.config.start_method is not None:
            return self.config.start_method
        try:
            get_context("fork")
            return "fork"
        except ValueError:  # pragma: no cover - non-POSIX platforms
            return "spawn"

    def effective_start_method(self) -> "str | None":
        """The start method supervised workers will use (None when inline).

        Callers deciding whether to ship :attr:`worker_setup` payloads can
        skip them for ``fork`` (children inherit parent process state) and
        inline mode (jobs run in the registering process).
        """
        if self.config.max_workers <= 0:
            return None
        return self._start_method()

    def _fail_attempt(
        self,
        state: _JobState,
        error: BaseException,
        now: float,
        ready_heap: list,
        seq: "list[int]",
        results: dict[str, JobResult],
        on_result: "Callable[[JobResult], None] | None",
    ) -> None:
        """Charge one failed attempt; requeue with backoff or finalize.

        Non-retryable taxonomy errors (``ConfigError``, ``ContractViolation``
        — see :func:`repro.runtime.errors.is_retryable`) finalize on the
        first attempt: they are deterministic rejections, and retrying them
        would only delay surfacing the error with its class intact.
        """
        state.failures += 1
        state.last_error = error
        self._count_failure(error)
        if isinstance(error, EvaluationTimeout):
            state.timeouts += 1
            self.timeouts += 1
        if isinstance(error, WorkerCrashed):
            state.crashes += 1
        if not is_retryable(error) or state.failures > self.config.retry.max_retries:
            self._finish(results, state.result(error=error), on_result)
            return
        self.retries += 1
        if obs_metrics.metrics_enabled():
            obs_metrics.get_registry().counter("pool.retries").inc()
        delay = self.config.retry.delay(state.failures, state.rng)
        state.waited_s += delay
        seq[0] += 1
        heapq.heappush(ready_heap, (now + delay, seq[0], state))

    def _run_supervised(
        self,
        states: "list[_JobState]",
        on_result: "Callable[[JobResult], None] | None",
    ) -> dict[str, JobResult]:
        ctx = get_context(self._start_method())
        n_workers = min(self.config.max_workers, max(len(states), 1))
        setup = tuple(self.worker_setup)
        workers = [_Worker(ctx, setup) for _ in range(n_workers)]
        results: dict[str, JobResult] = {}
        ready_heap: list = []
        seq = [0]
        now = time.monotonic()
        for state in states:
            seq[0] += 1
            heapq.heappush(ready_heap, (now, seq[0], state))
        try:
            while len(results) < len(states):
                now = time.monotonic()
                # Dispatch every due job to an idle worker.
                for i, worker in enumerate(workers):
                    if worker.state is not None:
                        continue
                    if not ready_heap or ready_heap[0][0] > now:
                        break
                    _, _, state = heapq.heappop(ready_heap)
                    try:
                        worker.assign(state, self.config.timeout_s)
                    except (BrokenPipeError, OSError):
                        # Worker died between jobs; replace it and charge
                        # the attempt as a crash.
                        worker.stop(kill=True)
                        workers[i] = _Worker(ctx, setup)
                        self.worker_restarts += 1
                        self._fail_attempt(
                            state,
                            WorkerCrashed(
                                f"worker unavailable for {state.job.key!r}"
                            ),
                            now, ready_heap, seq, results, on_result,
                        )

                # How long we may block: until the next backoff expiry or
                # the next deadline, capped so crash detection stays snappy.
                wait_s = 0.05
                if ready_heap:
                    wait_s = min(wait_s, max(ready_heap[0][0] - now, 0.0))
                for worker in workers:
                    if worker.deadline is not None:
                        wait_s = min(wait_s, max(worker.deadline - now, 0.0))

                busy = [w for w in workers if w.state is not None]
                ready_conns = (
                    mp_connection.wait([w.conn for w in busy], timeout=wait_s)
                    if busy
                    else []
                )
                if not busy and wait_s > 0:
                    time.sleep(wait_s)

                now = time.monotonic()
                for worker in busy:
                    if worker.conn in ready_conns:
                        try:
                            kind, payload, snapshot = worker.conn.recv()
                        except (EOFError, OSError):
                            continue  # pipe died; the liveness sweep handles it
                        if snapshot is not None and obs_metrics.metrics_enabled():
                            # Per-attempt worker metrics fold into the
                            # parent registry; merge is commutative, so
                            # arrival order across workers cannot matter.
                            obs_metrics.get_registry().merge(snapshot)
                        state = worker.release()
                        if kind == "ok":
                            self._finish(results, state.result(payload), on_result)
                        else:
                            self._fail_attempt(
                                state, payload, now, ready_heap, seq,
                                results, on_result,
                            )

                # Liveness + deadline sweep; replace any worker we lose.
                for i, worker in enumerate(workers):
                    if worker.state is None:
                        continue
                    if not worker.proc.is_alive():
                        state = worker.release()
                        exitcode = worker.proc.exitcode
                        worker.stop(kill=True)
                        workers[i] = _Worker(ctx, setup)
                        self.worker_restarts += 1
                        self._fail_attempt(
                            state,
                            WorkerCrashed(
                                f"worker died (exit code {exitcode}) while "
                                f"running {state.job.key!r}"
                            ),
                            now, ready_heap, seq, results, on_result,
                        )
                    elif worker.deadline is not None and now >= worker.deadline:
                        state = worker.release()
                        worker.stop(kill=True)
                        workers[i] = _Worker(ctx, setup)
                        self.worker_restarts += 1
                        self._fail_attempt(
                            state,
                            EvaluationTimeout(
                                f"job {state.job.key!r} exceeded "
                                f"{self.config.timeout_s}s (attempt "
                                f"{state.failures + 1})"
                            ),
                            now, ready_heap, seq, results, on_result,
                        )
        finally:
            for worker in workers:
                worker.stop(kill=worker.state is not None)
        return results
