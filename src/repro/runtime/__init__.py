"""Fault-tolerant evaluation runtime.

The measurement-driven loops of this library (the Fig. 3 algorithm, the
online controller, the Case Study I exploration, benchmark profiling) all
reduce to many independent ``simulate_and_measure`` evaluations.  This
package makes that evaluation path production-grade:

``repro.runtime.errors``
    The structured exception taxonomy (``ReproError`` → ``ConfigError`` /
    ``MeasurementError`` / ``EvaluationTimeout`` / ``WorkerCrashed``).
``repro.runtime.pool``
    Supervised worker-process pool: per-job timeouts, bounded retries with
    exponential backoff + jitter, worker-crash recovery.
``repro.runtime.journal``
    JSONL checkpoint journal so interrupted runs resume without
    re-simulating completed design points.
``repro.runtime.faults``
    Fault injection (NaN/inf stats, dropped intervals, truncated traces,
    spurious exceptions) to prove degradation is graceful.
``repro.runtime.guards``
    Measurement validation separating "safe to act on" from "reject".
``repro.runtime.trace_store``
    Process-resident traces keyed by content digest, so job payloads ship
    a digest string instead of pickled numpy arrays.
``repro.runtime.evalcache``
    Persistent content-addressed cache of measurements, shared across runs
    and invalidated by engine-version bumps.
``repro.runtime.histogram_store``
    Persistent content-addressed cache of trace locality profiles for the
    tier-0 surrogate, invalidated by histogram-version bumps.
``repro.runtime.evaluate``
    :class:`EvaluationRuntime`, the façade composing all of the above.

The error taxonomy is imported eagerly (every layer raises it); the rest
of the package loads lazily so that low-level modules (``repro.sim``) can
import the errors without dragging the evaluation stack — which itself
builds on ``repro.sim`` — into their import graph.
"""

from __future__ import annotations

from repro.runtime.errors import (
    ConfigError,
    EvaluationTimeout,
    MeasurementError,
    ReproError,
    WorkerCrashed,
    is_retryable,
)

__all__ = [
    "ReproError",
    "ConfigError",
    "MeasurementError",
    "EvaluationTimeout",
    "WorkerCrashed",
    "is_retryable",
    "CheckpointJournal",
    "FaultConfig",
    "FaultInjector",
    "ensure_finite_stats",
    "ensure_finite_report",
    "checked_report",
    "RetryPolicy",
    "PoolConfig",
    "Job",
    "JobResult",
    "EvaluationPool",
    "EvaluationRequest",
    "EvaluationRuntime",
    "RuntimeCounters",
    "EvaluationCache",
    "evaluation_cache_key",
    "HistogramStore",
    "histogram_cache_key",
    "cached_locality_profile",
]

_LAZY = {
    "CheckpointJournal": "repro.runtime.journal",
    "FaultConfig": "repro.runtime.faults",
    "FaultInjector": "repro.runtime.faults",
    "ensure_finite_stats": "repro.runtime.guards",
    "ensure_finite_report": "repro.runtime.guards",
    "checked_report": "repro.runtime.guards",
    "RetryPolicy": "repro.runtime.pool",
    "PoolConfig": "repro.runtime.pool",
    "Job": "repro.runtime.pool",
    "JobResult": "repro.runtime.pool",
    "EvaluationPool": "repro.runtime.pool",
    "EvaluationRequest": "repro.runtime.evaluate",
    "EvaluationRuntime": "repro.runtime.evaluate",
    "RuntimeCounters": "repro.runtime.evaluate",
    "EvaluationCache": "repro.runtime.evalcache",
    "evaluation_cache_key": "repro.runtime.evalcache",
    "HistogramStore": "repro.runtime.histogram_store",
    "histogram_cache_key": "repro.runtime.histogram_store",
    "cached_locality_profile": "repro.runtime.histogram_store",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> "list[str]":
    return sorted(__all__)
