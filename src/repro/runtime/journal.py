"""JSONL checkpoint journal for long evaluation runs.

Design-space explorations and profiling sweeps spend hundreds of full
simulate-and-measure evaluations.  The journal makes those runs resumable:
every completed evaluation is appended as one JSON line ``{"key": ...,
"value": ...}``, and a restarted run consults the journal before paying for
a simulation again.

Robustness properties:

* **append-only** — one ``open(..., "a")``/write/flush per entry, so a
  killed process loses at most the entry being written;
* **torn-tail tolerant** — a partially written final line (the signature of
  a mid-write crash) is skipped on load instead of poisoning the run;
* **last-writer-wins** — duplicate keys are allowed and the latest value is
  kept, so re-journaling an entry after a retry is harmless.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

__all__ = ["CheckpointJournal"]


class CheckpointJournal:
    """Append-only ``key -> JSON value`` store backed by a ``.jsonl`` file.

    The whole journal is loaded into memory at construction (entries are
    small measurement dictionaries, and explorations journal at most a few
    thousand of them), after which lookups are dict-speed.
    """

    def __init__(self, path: "str | os.PathLike[str]") -> None:
        self.path = Path(path)
        self._entries: dict[str, object] = {}
        self.dropped_lines = 0
        #: A file killed mid-write can end without a newline; the next
        #: append must start on a fresh line or it merges into (and ruins)
        #: the torn entry.
        self._tail_open = False
        self._load()

    def _load(self) -> None:
        if not self.path.exists():
            return
        if self.path.stat().st_size > 0:
            with self.path.open("rb") as fh:
                fh.seek(-1, os.SEEK_END)
                self._tail_open = fh.read(1) != b"\n"
        # Read binary and parse per line: a crash can cut the tail at *any*
        # byte offset, including inside a multi-byte UTF-8 sequence, and a
        # text-mode read would raise UnicodeDecodeError instead of treating
        # the torn tail as the recoverable damage it is.
        with self.path.open("rb") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    obj = json.loads(line)
                except (json.JSONDecodeError, UnicodeDecodeError):
                    # Torn tail from a crash mid-write; skip, keep the rest.
                    self.dropped_lines += 1
                    continue
                if not isinstance(obj, dict) or "key" not in obj or "value" not in obj:
                    self.dropped_lines += 1
                    continue
                self._entries[str(obj["key"])] = obj["value"]

    # -- mapping interface -------------------------------------------------
    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> list[str]:
        """Journaled keys, in no particular order."""
        return list(self._entries)

    def get(self, key: str) -> object:
        """The journaled value for *key* (:class:`KeyError` if absent)."""
        return self._entries[key]

    def sync_tail(self) -> None:
        """Re-inspect the file tail after external damage (e.g. truncation).

        Call when something other than :meth:`put` changed the file — a
        chaos injector, a concurrent crash-test harness — so the next
        append still starts on a fresh line.
        """
        self._tail_open = False
        if self.path.exists() and self.path.stat().st_size > 0:
            with self.path.open("rb") as fh:
                fh.seek(-1, os.SEEK_END)
                self._tail_open = fh.read(1) != b"\n"

    def put(self, key: str, value: object) -> None:
        """Append one entry and update the in-memory view.

        The value must be JSON-serializable; the line is flushed before the
        file is closed so a subsequent crash cannot lose it.
        """
        line = json.dumps({"key": key, "value": value}, separators=(",", ":"))
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as fh:
            if self._tail_open:
                fh.write("\n")
                self._tail_open = False
            fh.write(line + "\n")
            fh.flush()
        self._entries[key] = value

    def __repr__(self) -> str:
        return f"CheckpointJournal({str(self.path)!r}, entries={len(self)})"
