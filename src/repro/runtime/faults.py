"""Fault injection for the measurement path.

To *prove* that degradation is graceful — rather than accidentally
tolerable — the runtime can wrap the simulator/analyzer pipeline and
corrupt its output at configurable rates.  Four fault kinds cover the
failure modes a measurement-driven controller meets in practice:

``nan``
    A core statistic (CPI, CPI_exe, f_mem, or a layer C-AMAT) becomes NaN
    or infinity — a counter glitch or a divide-by-zero upstream.
``drop``
    The L1 interval report comes back empty, as if the detectors dropped
    their intervals for the window.
``truncate``
    The trace is silently truncated before simulation, producing a
    plausible-looking but short measurement.
``exception``
    The measurement raises a spurious
    :class:`~repro.runtime.errors.MeasurementError` (a died collector, a
    lost RPC).

All draws come from a seeded :class:`numpy.random.Generator`, so a faulty
run is exactly reproducible.  Every corruption produced here is detectable
by :mod:`repro.runtime.guards` (the drop/truncate kinds via the
``f_mem``/instruction-count consistency checks), which is what lets the
supervised path retry and the online controller hold the last-good
configuration instead of acting on garbage.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable

from repro.obs import metrics as obs_metrics
from repro.runtime.errors import MeasurementError
from repro.util.rng import spawn
from repro.util.validation import check_fraction

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.stats import HierarchyStats
    from repro.workloads.trace import Trace

__all__ = ["FaultConfig", "FaultInjector"]

#: Statistic fields a ``nan`` fault may hit, paired with the poison values
#: drawn uniformly per injection.
_NAN_FIELDS: tuple[str, ...] = ("cpi", "cpi_exe", "f_mem")
_POISONS: tuple[float, ...] = (math.nan, math.inf, -math.inf)


@dataclass(frozen=True)
class FaultConfig:
    """Per-kind injection rates (independent Bernoulli draws per call)."""

    nan_rate: float = 0.0
    drop_rate: float = 0.0
    truncate_rate: float = 0.0
    exception_rate: float = 0.0
    #: Fraction of the trace kept by a ``truncate`` fault.
    truncate_fraction: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        check_fraction("nan_rate", self.nan_rate)
        check_fraction("drop_rate", self.drop_rate)
        check_fraction("truncate_rate", self.truncate_rate)
        check_fraction("exception_rate", self.exception_rate)
        check_fraction("truncate_fraction", self.truncate_fraction, inclusive_high=False)

    @property
    def total_rate(self) -> float:
        """Sum of the four per-kind rates (upper bound on P[any fault])."""
        return self.nan_rate + self.drop_rate + self.truncate_rate + self.exception_rate

    @classmethod
    def uniform(cls, rate: float, *, seed: int = 0) -> "FaultConfig":
        """Spread one overall corruption *rate* evenly over the four kinds."""
        check_fraction("rate", rate)
        per_kind = rate / 4.0
        return cls(
            nan_rate=per_kind,
            drop_rate=per_kind,
            truncate_rate=per_kind,
            exception_rate=per_kind,
            seed=seed,
        )


class FaultInjector:
    """Stateful injector applying one :class:`FaultConfig`.

    Construct one injector per logical measurement stream; *labels* derive
    an independent seeded RNG stream (so e.g. retry attempt ``2`` of job
    ``"B"`` draws differently from attempt ``1`` without perturbing any
    other stream).
    """

    def __init__(self, config: FaultConfig, *labels: "str | int") -> None:
        self.config = config
        self._rng = spawn(config.seed, "fault-injector", *labels)
        self.injected = {"nan": 0, "drop": 0, "truncate": 0, "exception": 0}

    def _fire(self, rate: float, kind: str) -> bool:
        if rate > 0.0 and self._rng.random() < rate:
            self.injected[kind] += 1
            if obs_metrics.metrics_enabled():
                # Recorded injector-side: under a worker pool these land in
                # the worker registry and ship back with the (corrupted)
                # result, so the parent's merged count stays exact.
                reg = obs_metrics.get_registry()
                reg.counter("runtime.faults_injected").inc()
                reg.counter(f"runtime.faults.{kind}").inc()
            return True
        return False

    @property
    def total_injected(self) -> int:
        """Total faults injected so far by this injector."""
        return sum(self.injected.values())

    # -- the four fault kinds ----------------------------------------------
    def maybe_fail(self) -> None:
        """Raise a spurious :class:`MeasurementError` at ``exception_rate``."""
        if self._fire(self.config.exception_rate, "exception"):
            raise MeasurementError("injected fault: spurious measurement exception")

    def corrupt_trace(self, trace: "Trace") -> "Trace":
        """Truncate *trace* at ``truncate_rate`` (otherwise return it as is)."""
        if not self._fire(self.config.truncate_rate, "truncate"):
            return trace
        keep = max(1, int(trace.n_instructions * self.config.truncate_fraction))
        return trace.slice(0, keep)

    def corrupt_stats(self, stats: "HierarchyStats") -> "HierarchyStats":
        """Apply ``nan`` / ``drop`` corruption to a measurement."""
        if self._fire(self.config.drop_rate, "drop"):
            from repro.core.analyzer import measure_layer

            stats = replace(stats, l1=measure_layer([], [], [], []))
        if self._fire(self.config.nan_rate, "nan"):
            field = _NAN_FIELDS[int(self._rng.integers(len(_NAN_FIELDS)))]
            poison = _POISONS[int(self._rng.integers(len(_POISONS)))]
            stats = replace(stats, **{field: poison})
        return stats

    # -- composition --------------------------------------------------------
    def wrap_simulate(
        self, fn: "Callable[..., tuple[object, HierarchyStats]] | None" = None
    ) -> "Callable[..., tuple[object, HierarchyStats]]":
        """A drop-in, fault-injecting replacement for ``simulate_and_measure``.

        The returned callable has the same signature and return shape; every
        call may raise, truncate the input trace, or corrupt the returned
        statistics according to this injector's rates.
        """
        if fn is None:
            from repro.sim.stats import simulate_and_measure as fn

        def faulty_simulate_and_measure(config, trace, *, seed=0, warm=True):
            self.maybe_fail()
            result, stats = fn(
                config, self.corrupt_trace(trace), seed=seed, warm=warm
            )
            return result, self.corrupt_stats(stats)

        return faulty_simulate_and_measure
