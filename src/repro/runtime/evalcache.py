"""Persistent content-addressed cache of measured evaluations.

The paper's walks re-visit design points constantly: a guided LPM walk, a
greedy explorer frontier, an ``analysis/sweep`` grid and a CI run all
measure overlapping ``(trace, config, seed, warm)`` points — and the
checkpoint journal (:mod:`repro.runtime.journal`) only remembers them for
one journal file.  :class:`EvaluationCache` is the cross-run, cross-process
store: a directory of JSON entries keyed by content, so each measurement is
paid for exactly once per machine.

Key derivation
--------------
An entry's key is ``sha256`` over::

    (trace content digest, MachineConfig.cache_key(), seed, warm, ENGINE_VERSION)

* the *trace content digest* hashes the instruction arrays, not the trace
  name — renaming a workload cannot alias two different traces;
* ``MachineConfig.cache_key()`` covers every knob except the config's
  display name;
* :data:`repro.sim.engine.ENGINE_VERSION` is baked into the key, so a
  timing-model change invalidates every entry at once (stale entries are
  simply never looked up again); each entry also records the version so a
  stale store can be audited or pruned by hand.

When NOT to trust the cache: entries are only as good as the simulator
version discipline — a timing change that forgets to bump
``ENGINE_VERSION`` will keep serving pre-change measurements.  Delete the
cache directory (or pass a fresh ``--eval-cache`` path) when in doubt.

Storage layout is two-level (``root/ab/abcdef....json``) to keep directory
fan-out bounded; writes go through a temp file + ``os.replace`` so a killed
process never leaves a torn entry behind.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import TYPE_CHECKING

from repro.obs import metrics as obs_metrics

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.params import MachineConfig
    from repro.workloads.trace import Trace

__all__ = ["EvaluationCache", "evaluation_cache_key"]


def evaluation_cache_key(
    trace: "Trace", config: "MachineConfig", seed: int, warm: bool
) -> str:
    """Content-addressed key for one ``simulate_and_measure`` evaluation."""
    from repro.sim.engine import ENGINE_VERSION

    material = "|".join(
        (
            trace.content_digest(),
            config.cache_key(),
            f"seed={seed}",
            f"warm={warm}",
            f"engine_v{ENGINE_VERSION}",
        )
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


class EvaluationCache:
    """Directory-backed ``key -> measurement dict`` store.

    Values are the JSON dictionaries produced by
    ``HierarchyStats.to_dict()`` — exactly what the checkpoint journal
    stores — so a cache hit reconstructs byte-identical statistics.
    Hit/miss/byte counters are kept on the instance and mirrored into the
    ``obs`` metrics registry when metrics are enabled.
    """

    def __init__(self, root: "str | os.PathLike[str]") -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.bytes_read = 0
        self.bytes_written = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def get(self, key: str) -> "dict | None":
        """The cached measurement for *key*, or None on miss.

        Entries from another ``ENGINE_VERSION`` (or unreadable/torn files)
        count as misses; they are left on disk for auditing.
        """
        from repro.sim.engine import ENGINE_VERSION

        path = self._path(key)
        try:
            raw = path.read_bytes()
            entry = json.loads(raw)
        except (OSError, json.JSONDecodeError):
            self._record(hit=False)
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("engine_version") != ENGINE_VERSION
            or "stats" not in entry
        ):
            self._record(hit=False)
            return None
        self._record(hit=True, n_bytes=len(raw))
        return entry["stats"]

    def put(self, key: str, stats_dict: dict) -> None:
        """Store one measurement atomically (last writer wins)."""
        from repro.sim.engine import ENGINE_VERSION

        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {"engine_version": ENGINE_VERSION, "stats": stats_dict},
            separators=(",", ":"),
        ).encode("utf-8")
        tmp = path.with_suffix(".json.tmp")
        tmp.write_bytes(payload)
        os.replace(tmp, path)
        self.bytes_written += len(payload)
        if obs_metrics.metrics_enabled():
            obs_metrics.get_registry().counter("evalcache.bytes_written").inc(
                len(payload)
            )

    def _record(self, *, hit: bool, n_bytes: int = 0) -> None:
        if hit:
            self.hits += 1
            self.bytes_read += n_bytes
        else:
            self.misses += 1
        if obs_metrics.metrics_enabled():
            reg = obs_metrics.get_registry()
            reg.counter("evalcache.hits" if hit else "evalcache.misses").inc()
            if n_bytes:
                reg.counter("evalcache.bytes_read").inc(n_bytes)

    def __repr__(self) -> str:
        return (
            f"EvaluationCache({str(self.root)!r}, hits={self.hits}, "
            f"misses={self.misses})"
        )
