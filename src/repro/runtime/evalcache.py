"""Persistent content-addressed cache of measured evaluations.

The paper's walks re-visit design points constantly: a guided LPM walk, a
greedy explorer frontier, an ``analysis/sweep`` grid and a CI run all
measure overlapping ``(trace, config, seed, warm)`` points — and the
checkpoint journal (:mod:`repro.runtime.journal`) only remembers them for
one journal file.  :class:`EvaluationCache` is the cross-run, cross-process
store: a directory of JSON entries keyed by content, so each measurement is
paid for exactly once per machine.

Key derivation
--------------
An entry's key is ``sha256`` over::

    (trace content digest, MachineConfig.cache_key(), seed, warm, ENGINE_VERSION)

* the *trace content digest* hashes the instruction arrays, not the trace
  name — renaming a workload cannot alias two different traces;
* ``MachineConfig.cache_key()`` covers every knob except the config's
  display name;
* :data:`repro.sim.engine.ENGINE_VERSION` is baked into the key, so a
  timing-model change invalidates every entry at once (stale entries are
  simply never looked up again); each entry also records the version so a
  stale store can be audited or pruned by hand.

When NOT to trust the cache: entries are only as good as the simulator
version discipline — a timing change that forgets to bump
``ENGINE_VERSION`` will keep serving pre-change measurements.  Delete the
cache directory (or pass a fresh ``--eval-cache`` path) when in doubt.

Storage layout is two-level (``root/ab/abcdef....json``) to keep directory
fan-out bounded; writes go through a temp file + ``os.replace`` so a killed
process never leaves a torn entry behind.

Corrupt-entry quarantine
------------------------
Even with atomic writes, a shard can rot under the store's feet: a crash
mid-``os.replace`` on some filesystems, a partial copy, bit rot, or an
injected chaos fault (:mod:`repro.service.chaos`) can leave truncated JSON
or a payload that no longer matches its recorded digest.  Reads treat any
such entry as a **miss**, move the damaged file to a ``.corrupt`` sibling
(so it can never be served again but stays available for forensics), and
bump the ``evalcache.corrupt_quarantined`` counter.  Corruption is
detected two ways:

* the file fails to parse as JSON (torn write), or lacks the entry shape;
* the entry's recorded ``sha`` — written by :meth:`EvaluationCache.put`
  over the canonical stats payload — does not match the payload
  (silent content corruption).  Entries written before the digest field
  existed carry no ``sha`` and are served as-is.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import TYPE_CHECKING

from repro.obs import metrics as obs_metrics

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.params import MachineConfig
    from repro.workloads.trace import Trace

__all__ = ["EvaluationCache", "evaluation_cache_key"]


def evaluation_cache_key(
    trace: "Trace", config: "MachineConfig", seed: int, warm: bool
) -> str:
    """Content-addressed key for one ``simulate_and_measure`` evaluation."""
    from repro.sim.engine import ENGINE_VERSION

    material = "|".join(
        (
            trace.content_digest(),
            config.cache_key(),
            f"seed={seed}",
            f"warm={warm}",
            f"engine_v{ENGINE_VERSION}",
        )
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def _stats_digest(stats_dict: dict) -> str:
    """Content digest of one canonicalized stats payload (entry integrity)."""
    canonical = json.dumps(stats_dict, separators=(",", ":"), sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


class EvaluationCache:
    """Directory-backed ``key -> measurement dict`` store.

    Values are the JSON dictionaries produced by
    ``HierarchyStats.to_dict()`` — exactly what the checkpoint journal
    stores — so a cache hit reconstructs byte-identical statistics.
    Hit/miss/byte counters are kept on the instance and mirrored into the
    ``obs`` metrics registry when metrics are enabled.
    """

    def __init__(self, root: "str | os.PathLike[str]") -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.quarantined = 0
        self.bytes_read = 0
        self.bytes_written = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def get(self, key: str) -> "dict | None":
        """The cached measurement for *key*, or None on miss.

        Entries from another ``ENGINE_VERSION`` count as misses and are
        left on disk for auditing.  Torn files (unparseable JSON, wrong
        entry shape) and entries whose payload digest no longer matches
        are **quarantined**: moved to a ``.corrupt`` sibling, counted, and
        reported as a miss — corruption never raises out of the cache
        layer and can never be served twice.
        """
        from repro.sim.engine import ENGINE_VERSION

        path = self._path(key)
        try:
            raw = path.read_bytes()
        except OSError:
            self._record(hit=False)
            return None
        try:
            entry = json.loads(raw)
        except (json.JSONDecodeError, UnicodeDecodeError):
            self._quarantine(path, "torn")
            return None
        if not isinstance(entry, dict) or "stats" not in entry:
            self._quarantine(path, "malformed")
            return None
        if "sha" in entry and entry["sha"] != _stats_digest(entry["stats"]):
            self._quarantine(path, "digest-mismatch")
            return None
        if entry.get("engine_version") != ENGINE_VERSION:
            self._record(hit=False)
            return None
        self._record(hit=True, n_bytes=len(raw))
        return entry["stats"]

    def put(self, key: str, stats_dict: dict) -> None:
        """Store one measurement atomically (last writer wins)."""
        from repro.sim.engine import ENGINE_VERSION

        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {
                "engine_version": ENGINE_VERSION,
                "sha": _stats_digest(stats_dict),
                "stats": stats_dict,
            },
            separators=(",", ":"),
        ).encode("utf-8")
        tmp = path.with_suffix(".json.tmp")
        tmp.write_bytes(payload)
        os.replace(tmp, path)
        self.bytes_written += len(payload)
        if obs_metrics.metrics_enabled():
            obs_metrics.get_registry().counter("evalcache.bytes_written").inc(
                len(payload)
            )

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a damaged shard to its ``.corrupt`` sibling; count a miss."""
        target = path.with_name(path.name + ".corrupt")
        try:
            os.replace(path, target)
        except OSError:
            # Could not move it (e.g. racing reader already did); a miss is
            # still the right answer — the entry is never served.
            pass
        self.quarantined += 1
        if obs_metrics.metrics_enabled():
            reg = obs_metrics.get_registry()
            reg.counter("evalcache.corrupt_quarantined").inc()
            reg.counter(f"evalcache.corrupt.{reason}").inc()
        self._record(hit=False)

    def _record(self, *, hit: bool, n_bytes: int = 0) -> None:
        if hit:
            self.hits += 1
            self.bytes_read += n_bytes
        else:
            self.misses += 1
        if obs_metrics.metrics_enabled():
            reg = obs_metrics.get_registry()
            reg.counter("evalcache.hits" if hit else "evalcache.misses").inc()
            if n_bytes:
                reg.counter("evalcache.bytes_read").inc(n_bytes)

    def __repr__(self) -> str:
        return (
            f"EvaluationCache({str(self.root)!r}, hits={self.hits}, "
            f"misses={self.misses})"
        )
