"""Structured exception taxonomy for the evaluation runtime.

Every failure the library can recover from derives from :class:`ReproError`,
so supervising code (the evaluation pool, the online controller, the CLI)
can catch one base class and still distinguish the failure mode:

``ConfigError``
    A configuration is malformed or unknown (bad Table I label, knob value
    off its ladder, geometry change through ``reconfigure``).  Also a
    :class:`ValueError`, so pre-taxonomy callers keep working.
``MeasurementError``
    A measurement is unusable: non-finite statistics, an empty interval
    report where accesses were expected, a truncated trace, or an injected
    fault.  The supervised evaluation path retries these; the online
    controller rejects them and holds the last-good configuration.
``EvaluationTimeout``
    A supervised evaluation exceeded its per-job deadline.  Also a
    :class:`TimeoutError`.
``WorkerCrashed``
    A pool worker process died (killed, segfaulted, or exited) while it was
    running a job.  The supervisor replaces the worker and retries the job.

The module deliberately imports nothing from the rest of the package so
that any layer (``sim``, ``reconfig``, ``sched``, ``cli``) can raise these
without import cycles.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "MeasurementError",
    "EvaluationTimeout",
    "WorkerCrashed",
    "is_retryable",
]


class ReproError(Exception):
    """Base class of every recoverable error raised by this library.

    ``retryable`` tells the supervised evaluation pool whether retrying the
    same work can possibly produce a different outcome: transient failures
    (an injected fault, a timeout, a crashed worker) are retryable, while
    deterministic rejections (a malformed configuration, a broken model
    contract) fail identically forever and must surface on the first
    attempt with their taxonomy intact.
    """

    retryable: bool = True


class ConfigError(ReproError, ValueError):
    """A machine/design configuration is malformed or unknown.

    Deterministic: the same configuration is rejected on every attempt, so
    the pool fails fast instead of burning its retry budget.
    """

    retryable = False


class MeasurementError(ReproError, RuntimeError):
    """A measurement is corrupt, incomplete, or otherwise unusable."""


class EvaluationTimeout(ReproError, TimeoutError):
    """A supervised evaluation job exceeded its deadline."""


class WorkerCrashed(ReproError, RuntimeError):
    """A worker process died while executing a job."""


def is_retryable(error: BaseException) -> bool:
    """Whether the pool may retry the attempt that raised *error*.

    :class:`ReproError` subclasses carry an explicit ``retryable`` flag;
    anything else gets the benefit of the doubt (an unknown failure may
    well be transient).  ``KeyboardInterrupt`` / ``SystemExit`` never reach
    this check — they derive from :class:`BaseException` and propagate
    through the pool untouched.
    """
    if isinstance(error, ReproError):
        return error.retryable
    return True
