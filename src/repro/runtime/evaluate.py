"""Supervised, checkpointed ``simulate_and_measure`` evaluation.

:class:`EvaluationRuntime` is the façade the rest of the library talks to:
it composes the worker pool (:mod:`repro.runtime.pool`), the JSONL
checkpoint journal (:mod:`repro.runtime.journal`), the fault-injection
layer (:mod:`repro.runtime.faults`) and the measurement guards
(:mod:`repro.runtime.guards`) behind two calls::

    runtime = EvaluationRuntime(pool=PoolConfig(max_workers=4),
                                journal="explore.jsonl")
    stats = runtime.evaluate(EvaluationRequest(key, config, trace))
    many  = runtime.evaluate_many(requests)     # parallel, checkpointed

Every completed evaluation is journaled, so an interrupted exploration or
profiling run resumes without re-simulating finished design points; the
``counters`` attribute reports exactly how much work was real versus
recovered from the journal.

Two further layers keep repeated work cheap:

* **Worker-resident traces** — traces are registered once per process in
  :mod:`repro.runtime.trace_store` and job payloads carry the content
  digest, so per-job pickle size no longer scales with trace length.
* **Persistent evaluation cache** — an optional
  :class:`~repro.runtime.evalcache.EvaluationCache` (``cache=`` kwarg)
  recalls measurements across runs and processes, keyed by trace content,
  config knobs, seed/warm and the engine version.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.runtime import trace_store
from repro.runtime.errors import ConfigError
from repro.runtime.evalcache import EvaluationCache, evaluation_cache_key
from repro.runtime.faults import FaultConfig, FaultInjector
from repro.runtime.guards import ensure_finite_stats
from repro.runtime.journal import CheckpointJournal
from repro.runtime.pool import EvaluationPool, Job, PoolConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from collections.abc import Callable

    from repro.sim.params import MachineConfig
    from repro.sim.stats import HierarchyStats
    from repro.workloads.trace import Trace

__all__ = [
    "EvaluationRequest",
    "EvalOutcome",
    "RuntimeCounters",
    "EvaluationRuntime",
]


@dataclass(frozen=True)
class EvaluationRequest:
    """One simulate-and-measure evaluation, identified by a stable key.

    The key is what the checkpoint journal stores results under, so it must
    capture everything that determines the measurement — callers should
    build it from the trace identity plus the full configuration knob
    tuple (see :meth:`repro.sim.params.MachineConfig.cache_key`).
    """

    key: str
    config: "MachineConfig"
    trace: "Trace"
    seed: int = 0
    warm: bool = True


@dataclass
class EvalOutcome:
    """Per-request outcome of a detailed batch evaluation.

    ``source`` records which layer produced the result (``"journal"``,
    ``"cache"`` or ``"simulated"``); the attempt counters are zero for
    journal/cache hits, which never touch the pool.
    """

    key: str
    stats: "HierarchyStats | None" = None
    error: "BaseException | None" = None
    source: str = "simulated"
    attempts: int = 0
    timeouts: int = 0
    crashes: int = 0
    waited_s: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether the evaluation produced usable statistics."""
        return self.error is None


@dataclass
class RuntimeCounters:
    """How much work a runtime instance actually performed."""

    simulations: int = 0
    journal_hits: int = 0
    cache_hits: int = 0
    retries: int = 0
    timeouts: int = 0
    worker_restarts: int = 0


def _simulate_job(
    config: "MachineConfig",
    trace: "Trace | str",
    seed: int,
    warm: bool,
    faults: "FaultConfig | None",
    fault_label: str,
    _attempt: int = 1,
) -> "HierarchyStats":
    """Worker-side job body: simulate, (optionally) inject faults, validate.

    Module-level so it pickles across process boundaries.  *trace* is
    normally a content digest resolved against the process-resident trace
    store (a full :class:`Trace` is still accepted for direct callers).
    The fault injector is seeded per ``(job, attempt)``, so a retry of a
    corrupted measurement draws fresh randomness while the clean
    measurement itself stays bit-identical (the simulator is deterministic
    under its seed).
    """
    from repro.sim.stats import simulate_and_measure

    if isinstance(trace, str):
        trace = trace_store.resolve(trace)
    fn = simulate_and_measure
    if faults is not None and faults.total_rate > 0.0:
        fn = FaultInjector(faults, fault_label, _attempt).wrap_simulate(fn)
    _, stats = fn(config, trace, seed=seed, warm=warm)
    ensure_finite_stats(stats, expected_instructions=trace.n_instructions)
    return stats


def _simulate_batch_job(
    configs: "list[MachineConfig]",
    trace: "Trace | str",
    seed: int,
    warm: bool,
) -> "list[HierarchyStats]":
    """Worker-side batch job body: one vectorized kernel call per batch.

    Module-level so it pickles across process boundaries; *trace* follows
    the :func:`_simulate_job` digest convention.  Ineligible configs fall
    back to scalar simulation inside :func:`simulate_and_measure_batch`,
    so the caller never has to split the batch itself.
    """
    from repro.sim.stats import simulate_and_measure_batch

    if isinstance(trace, str):
        trace = trace_store.resolve(trace)
    pairs = simulate_and_measure_batch(configs, trace, seed=seed, warm=warm)
    stats_list = []
    for _, stats in pairs:
        ensure_finite_stats(stats, expected_instructions=trace.n_instructions)
        stats_list.append(stats)
    return stats_list


class EvaluationRuntime:
    """Pool + journal + faults composed into one evaluation service."""

    def __init__(
        self,
        *,
        pool: "PoolConfig | None" = None,
        journal: "CheckpointJournal | str | Path | None" = None,
        faults: "FaultConfig | None" = None,
        cache: "EvaluationCache | str | Path | None" = None,
        job_fn: "Callable | None" = None,
    ) -> None:
        self.pool_config = pool if pool is not None else PoolConfig()
        if isinstance(journal, (str, Path)):
            journal = CheckpointJournal(journal)
        self.journal = journal
        if isinstance(cache, (str, Path)):
            cache = EvaluationCache(cache)
        self.cache = cache
        self.faults = faults
        #: Replacement worker-side job body.  Must be picklable and accept
        #: the :func:`_simulate_job` signature (plus ``_attempt=``, which is
        #: always passed when a custom body is installed).  The service
        #: chaos layer uses this to wrap simulation with injected failures
        #: without touching the journal/cache layering above it.
        self.job_fn = job_fn
        self.counters = RuntimeCounters()
        #: Where each key of the most recent :meth:`evaluate_many` batch came
        #: from: ``"simulated"``, ``"journal"`` or ``"cache"``.
        self.last_sources: "dict[str, str]" = {}
        self._pool = EvaluationPool(self.pool_config)

    def evaluate(self, request: EvaluationRequest) -> "HierarchyStats":
        """Evaluate one request (journal-checkpointed, supervised)."""
        return self.evaluate_many([request])[request.key]

    def evaluate_many(
        self, requests: "list[EvaluationRequest]"
    ) -> "dict[str, HierarchyStats]":
        """Evaluate a batch; parallel across workers when the pool has any.

        Lookup order per request: checkpoint journal (this run's file),
        then the persistent evaluation cache (cross-run), then a real
        simulation.  Cache hits are re-journaled and fresh results are
        journaled *and* cached as soon as they complete, so a run killed
        mid-batch resumes with zero duplicate evaluations.
        ``last_sources`` records where each key came from.

        Raises the first failed request's error (in submission order); use
        :meth:`evaluate_many_detailed` to keep per-request failures.
        """
        outcomes = self.evaluate_many_detailed(requests)
        for req in requests:
            error = outcomes[req.key].error
            if error is not None:
                raise error
        return {key: outcome.stats for key, outcome in outcomes.items()}

    def evaluate_batch(
        self, requests: "list[EvaluationRequest]"
    ) -> "dict[str, HierarchyStats]":
        """Like :meth:`evaluate_many`, but one *batch job* per shared trace.

        The journal/cache pre-pass is identical to :meth:`evaluate_many`
        (and cache keys are shared with the scalar path — the batch kernel
        is bit-identical, so a scalar result satisfies a batch request and
        vice versa).  The remaining misses are grouped by
        ``(trace, seed, warm)`` and each group dispatches **one** pool job
        that steps the whole design-space slice per kernel call, instead
        of N scalar jobs.  Fault injection and custom job bodies are a
        scalar-path feature; batch dispatch refuses them loudly.
        """
        from repro.sim.stats import HierarchyStats

        if self.faults is not None or self.job_fn is not None:
            raise ConfigError(
                "evaluate_batch() does not support fault injection or a "
                "custom job_fn; use evaluate_many() for the chaos layer"
            )
        results: "dict[str, HierarchyStats]" = {}
        todo: "list[EvaluationRequest]" = []
        self.last_sources = {}
        cache_keys: "dict[str, str]" = {}
        with obs_trace.span("runtime.evaluate_batch", requests=len(requests)):
            for req in requests:
                if req.key in results or any(t.key == req.key for t in todo):
                    continue
                if self.journal is not None and req.key in self.journal:
                    results[req.key] = HierarchyStats.from_dict(
                        self.journal.get(req.key)
                    )
                    self.counters.journal_hits += 1
                    self.last_sources[req.key] = "journal"
                    continue
                if self.cache is not None:
                    ckey = evaluation_cache_key(
                        req.trace, req.config, req.seed, req.warm
                    )
                    cache_keys[req.key] = ckey
                    cached = self.cache.get(ckey)
                    if cached is not None:
                        results[req.key] = HierarchyStats.from_dict(cached)
                        self.counters.cache_hits += 1
                        self.last_sources[req.key] = "cache"
                        if self.journal is not None:
                            self.journal.put(req.key, cached)
                        continue
                todo.append(req)
            if not todo:
                return results
            groups: "dict[tuple, list[EvaluationRequest]]" = {}
            setup: "list[tuple]" = []
            for req in todo:
                digest = req.trace.content_digest()
                group_key = (digest, req.seed, req.warm)
                if group_key not in groups:
                    trace_store.register(req.trace, digest)
                    setup.append((trace_store.register, (req.trace, digest)))
                groups.setdefault(group_key, []).append(req)
            self._pool.worker_setup = (
                setup if self._pool.effective_start_method() == "spawn" else []
            )
            jobs = [
                Job(
                    key=f"batch|{digest}|seed={seed}|warm={warm}",
                    fn=_simulate_batch_job,
                    args=([r.config for r in grp], digest, seed, warm),
                )
                for (digest, seed, warm), grp in groups.items()
            ]
            pool_results = self._pool.run(jobs, on_error="keep")
            for job, ((_, _, _), grp) in zip(jobs, groups.items()):
                outcome = pool_results[job.key]
                if not outcome.ok:
                    raise outcome.error
                for req, stats in zip(grp, outcome.value):
                    results[req.key] = stats
                    self.counters.simulations += 1
                    self.last_sources[req.key] = "simulated"
                    stats_dict = stats.to_dict()
                    if self.journal is not None:
                        self.journal.put(req.key, stats_dict)
                    if self.cache is not None and req.key in cache_keys:
                        self.cache.put(cache_keys[req.key], stats_dict)
        return results

    def evaluate_many_detailed(
        self, requests: "list[EvaluationRequest]"
    ) -> "dict[str, EvalOutcome]":
        """Like :meth:`evaluate_many`, but failures stay per-request.

        Every request gets an :class:`EvalOutcome` — a failed one carries
        its terminal error instead of raising out of the whole batch, so a
        caller serving many independent clients (the evaluation service)
        can fail one job without poisoning its neighbours.
        """
        from repro.sim.stats import HierarchyStats

        outcomes: "dict[str, EvalOutcome]" = {}
        todo: "list[EvaluationRequest]" = []
        self.last_sources = {}
        cache_keys: "dict[str, str]" = {}
        batch_span = obs_trace.span("runtime.evaluate_many", requests=len(requests))
        batch_span.__enter__()
        for req in requests:
            if req.key in outcomes or any(t.key == req.key for t in todo):
                continue  # duplicate request in one batch
            if self.journal is not None and req.key in self.journal:
                outcomes[req.key] = EvalOutcome(
                    key=req.key,
                    stats=HierarchyStats.from_dict(self.journal.get(req.key)),
                    source="journal",
                )
                self.counters.journal_hits += 1
                self.last_sources[req.key] = "journal"
                continue
            if self.cache is not None:
                ckey = evaluation_cache_key(req.trace, req.config, req.seed, req.warm)
                cache_keys[req.key] = ckey
                cached = self.cache.get(ckey)
                if cached is not None:
                    outcomes[req.key] = EvalOutcome(
                        key=req.key,
                        stats=HierarchyStats.from_dict(cached),
                        source="cache",
                    )
                    self.counters.cache_hits += 1
                    self.last_sources[req.key] = "cache"
                    if self.journal is not None:
                        # Re-journal so later batches in this run hit the
                        # journal without re-deriving the cache key.
                        self.journal.put(req.key, cached)
                    continue
            todo.append(req)
        n_cache = sum(1 for s in self.last_sources.values() if s == "cache")
        if obs_metrics.metrics_enabled():
            reg = obs_metrics.get_registry()
            reg.counter("runtime.requests").inc(len(requests))
            reg.counter("runtime.journal_hits").inc(len(outcomes) - n_cache)
            reg.counter("runtime.cache_hits").inc(n_cache)
        try:
            if todo:
                # Ship each distinct trace once per process, not once per
                # job: register parent-side (covers inline execution and
                # fork workers, which inherit the store) and, under spawn,
                # once per worker via the pool's setup messages.
                seen_digests: "set[str]" = set()
                setup: "list[tuple]" = []
                for req in todo:
                    digest = req.trace.content_digest()
                    if digest not in seen_digests:
                        seen_digests.add(digest)
                        trace_store.register(req.trace, digest)
                        setup.append((trace_store.register, (req.trace, digest)))
                self._pool.worker_setup = (
                    setup
                    if self._pool.effective_start_method() == "spawn"
                    else []
                )
                jobs = [
                    Job(
                        key=req.key,
                        fn=self.job_fn if self.job_fn is not None else _simulate_job,
                        args=(req.config, req.trace.content_digest(), req.seed,
                              req.warm, self.faults, req.key),
                        pass_attempt=self.faults is not None or self.job_fn is not None,
                    )
                    for req in todo
                ]
                before = (self._pool.retries, self._pool.timeouts, self._pool.worker_restarts)

                def _checkpoint(result) -> None:
                    # Fires per terminal job result, *during* the batch — a run
                    # killed mid-batch keeps everything finished so far.
                    if result.ok:
                        self.counters.simulations += 1
                        if obs_metrics.metrics_enabled():
                            obs_metrics.get_registry().counter(
                                "runtime.simulations"
                            ).inc()
                        stats_dict = result.value.to_dict()
                        if self.journal is not None:
                            self.journal.put(result.key, stats_dict)
                        if self.cache is not None and result.key in cache_keys:
                            self.cache.put(cache_keys[result.key], stats_dict)

                results = self._pool.run(jobs, on_error="keep", on_result=_checkpoint)
                self.counters.retries += self._pool.retries - before[0]
                self.counters.timeouts += self._pool.timeouts - before[1]
                self.counters.worker_restarts += self._pool.worker_restarts - before[2]
                for req in todo:
                    result = results[req.key]
                    outcomes[req.key] = EvalOutcome(
                        key=req.key,
                        stats=result.value if result.ok else None,
                        error=result.error,
                        source="simulated",
                        attempts=result.attempts,
                        timeouts=result.timeouts,
                        crashes=result.crashes,
                        waited_s=result.waited_s,
                    )
                    if result.ok:
                        self.last_sources[req.key] = "simulated"
        finally:
            batch_span.set(
                journal_hits=len(requests) - len(todo) - n_cache,
                cache_hits=n_cache,
                simulated=len(todo),
            )
            batch_span.__exit__(None, None, None)
        return outcomes
