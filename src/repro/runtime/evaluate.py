"""Supervised, checkpointed ``simulate_and_measure`` evaluation.

:class:`EvaluationRuntime` is the façade the rest of the library talks to:
it composes the worker pool (:mod:`repro.runtime.pool`), the JSONL
checkpoint journal (:mod:`repro.runtime.journal`), the fault-injection
layer (:mod:`repro.runtime.faults`) and the measurement guards
(:mod:`repro.runtime.guards`) behind two calls::

    runtime = EvaluationRuntime(pool=PoolConfig(max_workers=4),
                                journal="explore.jsonl")
    stats = runtime.evaluate(EvaluationRequest(key, config, trace))
    many  = runtime.evaluate_many(requests)     # parallel, checkpointed

Every completed evaluation is journaled, so an interrupted exploration or
profiling run resumes without re-simulating finished design points; the
``counters`` attribute reports exactly how much work was real versus
recovered from the journal.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.runtime.faults import FaultConfig, FaultInjector
from repro.runtime.guards import ensure_finite_stats
from repro.runtime.journal import CheckpointJournal
from repro.runtime.pool import EvaluationPool, Job, PoolConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.params import MachineConfig
    from repro.sim.stats import HierarchyStats
    from repro.workloads.trace import Trace

__all__ = ["EvaluationRequest", "RuntimeCounters", "EvaluationRuntime"]


@dataclass(frozen=True)
class EvaluationRequest:
    """One simulate-and-measure evaluation, identified by a stable key.

    The key is what the checkpoint journal stores results under, so it must
    capture everything that determines the measurement — callers should
    build it from the trace identity plus the full configuration knob
    tuple (see :meth:`repro.sim.params.MachineConfig.cache_key`).
    """

    key: str
    config: "MachineConfig"
    trace: "Trace"
    seed: int = 0
    warm: bool = True


@dataclass
class RuntimeCounters:
    """How much work a runtime instance actually performed."""

    simulations: int = 0
    journal_hits: int = 0
    retries: int = 0
    timeouts: int = 0
    worker_restarts: int = 0


def _simulate_job(
    config: "MachineConfig",
    trace: "Trace",
    seed: int,
    warm: bool,
    faults: "FaultConfig | None",
    fault_label: str,
    _attempt: int = 1,
) -> "HierarchyStats":
    """Worker-side job body: simulate, (optionally) inject faults, validate.

    Module-level so it pickles across process boundaries.  The fault
    injector is seeded per ``(job, attempt)``, so a retry of a corrupted
    measurement draws fresh randomness while the clean measurement itself
    stays bit-identical (the simulator is deterministic under its seed).
    """
    from repro.sim.stats import simulate_and_measure

    fn = simulate_and_measure
    if faults is not None and faults.total_rate > 0.0:
        fn = FaultInjector(faults, fault_label, _attempt).wrap_simulate(fn)
    _, stats = fn(config, trace, seed=seed, warm=warm)
    ensure_finite_stats(stats, expected_instructions=trace.n_instructions)
    return stats


class EvaluationRuntime:
    """Pool + journal + faults composed into one evaluation service."""

    def __init__(
        self,
        *,
        pool: "PoolConfig | None" = None,
        journal: "CheckpointJournal | str | Path | None" = None,
        faults: "FaultConfig | None" = None,
    ) -> None:
        self.pool_config = pool if pool is not None else PoolConfig()
        if isinstance(journal, (str, Path)):
            journal = CheckpointJournal(journal)
        self.journal = journal
        self.faults = faults
        self.counters = RuntimeCounters()
        self._pool = EvaluationPool(self.pool_config)

    def evaluate(self, request: EvaluationRequest) -> "HierarchyStats":
        """Evaluate one request (journal-checkpointed, supervised)."""
        return self.evaluate_many([request])[request.key]

    def evaluate_many(
        self, requests: "list[EvaluationRequest]"
    ) -> "dict[str, HierarchyStats]":
        """Evaluate a batch; parallel across workers when the pool has any.

        Journal hits are returned without simulating; fresh results are
        journaled as soon as they complete, so a run killed mid-batch
        resumes with zero duplicate evaluations.
        """
        from repro.sim.stats import HierarchyStats

        out: "dict[str, HierarchyStats]" = {}
        todo: "list[EvaluationRequest]" = []
        batch_span = obs_trace.span("runtime.evaluate_many", requests=len(requests))
        batch_span.__enter__()
        for req in requests:
            if req.key in out or any(t.key == req.key for t in todo):
                continue  # duplicate request in one batch
            if self.journal is not None and req.key in self.journal:
                out[req.key] = HierarchyStats.from_dict(self.journal.get(req.key))
                self.counters.journal_hits += 1
            else:
                todo.append(req)
        if obs_metrics.metrics_enabled():
            reg = obs_metrics.get_registry()
            reg.counter("runtime.requests").inc(len(requests))
            reg.counter("runtime.journal_hits").inc(len(out))
        try:
            if todo:
                jobs = [
                    Job(
                        key=req.key,
                        fn=_simulate_job,
                        args=(req.config, req.trace, req.seed, req.warm,
                              self.faults, req.key),
                        pass_attempt=self.faults is not None,
                    )
                    for req in todo
                ]
                before = (self._pool.retries, self._pool.timeouts, self._pool.worker_restarts)

                def _checkpoint(result) -> None:
                    # Fires per terminal job result, *during* the batch — a run
                    # killed mid-batch keeps everything finished so far.
                    if result.ok:
                        self.counters.simulations += 1
                        if obs_metrics.metrics_enabled():
                            obs_metrics.get_registry().counter(
                                "runtime.simulations"
                            ).inc()
                        if self.journal is not None:
                            self.journal.put(result.key, result.value.to_dict())

                results = self._pool.run(jobs, on_result=_checkpoint)
                self.counters.retries += self._pool.retries - before[0]
                self.counters.timeouts += self._pool.timeouts - before[1]
                self.counters.worker_restarts += self._pool.worker_restarts - before[2]
                for req in todo:
                    out[req.key] = results[req.key].value
        finally:
            batch_span.set(journal_hits=len(requests) - len(todo), simulated=len(todo))
            batch_span.__exit__(None, None, None)
        return out
