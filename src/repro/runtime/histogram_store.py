"""Persistent content-addressed cache of trace locality profiles.

The tier-0 surrogate's profiling pass (:func:`repro.workloads.locality.
profile_trace`) is the only non-trivial cost of analytical prediction —
one Fenwick-tree sweep over the trace.  It depends solely on the trace
*content*, the line granularity, and the warm/cold convention, so its
result is cacheable across every configuration, exploration, and process
that shares the trace — the same economics as the PR 4 evaluation cache,
with a histogram payload instead of a measurement.

Key derivation: ``sha256`` over ``(trace content digest, line_bytes,
warm, HISTOGRAM_VERSION)``.  The version stamp invalidates every entry at
once when the histogram definition changes, mirroring the
``ENGINE_VERSION`` discipline of :mod:`repro.runtime.evalcache`.

Storage follows the evalcache idiom exactly: two-level sharded JSON
(``root/ab/abcdef....json``), temp-file + ``os.replace`` atomic writes,
and corrupt-shard quarantine (torn/malformed entries are moved to a
``.corrupt`` sibling and reported as misses, never served).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import TYPE_CHECKING

from repro.obs import metrics as obs_metrics
from repro.workloads.locality import (
    HISTOGRAM_VERSION,
    LocalityProfile,
    profile_trace,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workloads.trace import Trace

__all__ = ["HistogramStore", "histogram_cache_key", "cached_locality_profile"]


def histogram_cache_key(trace_digest: str, line_bytes: int, warm: bool) -> str:
    """Content-addressed key for one locality-profiling pass."""
    material = "|".join(
        (
            trace_digest,
            f"line={line_bytes}",
            f"warm={warm}",
            f"hist_v{HISTOGRAM_VERSION}",
        )
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


class HistogramStore:
    """Directory-backed ``key -> LocalityProfile dict`` store."""

    def __init__(self, root: "str | os.PathLike[str]") -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.quarantined = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def get(self, key: str) -> "LocalityProfile | None":
        """The cached profile for *key*, or None on miss.

        Entries from another :data:`HISTOGRAM_VERSION` count as misses
        and stay on disk for auditing; torn or malformed shards are
        quarantined to a ``.corrupt`` sibling and reported as misses.
        """
        path = self._path(key)
        try:
            raw = path.read_bytes()
        except OSError:
            self._record(hit=False)
            return None
        try:
            entry = json.loads(raw)
        except (json.JSONDecodeError, UnicodeDecodeError):
            self._quarantine(path, "torn")
            return None
        if not isinstance(entry, dict) or "profile" not in entry:
            self._quarantine(path, "malformed")
            return None
        if entry.get("histogram_version") != HISTOGRAM_VERSION:
            self._record(hit=False)
            return None
        try:
            profile = LocalityProfile.from_dict(entry["profile"])
        except (KeyError, TypeError, ValueError):
            self._quarantine(path, "malformed")
            return None
        self._record(hit=True)
        return profile

    def put(self, key: str, profile: LocalityProfile) -> None:
        """Store one profile atomically (last writer wins)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {"histogram_version": HISTOGRAM_VERSION, "profile": profile.to_dict()},
            separators=(",", ":"),
        ).encode("utf-8")
        tmp = path.with_suffix(".json.tmp")
        tmp.write_bytes(payload)
        os.replace(tmp, path)

    def _quarantine(self, path: Path, reason: str) -> None:
        target = path.with_name(path.name + ".corrupt")
        try:
            os.replace(path, target)
        except OSError:
            # Racing reader already moved it; a miss is still right.
            pass
        self.quarantined += 1
        if obs_metrics.metrics_enabled():
            reg = obs_metrics.get_registry()
            reg.counter("histstore.corrupt_quarantined").inc()
            reg.counter(f"histstore.corrupt.{reason}").inc()
        self._record(hit=False)

    def _record(self, *, hit: bool) -> None:
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        if obs_metrics.metrics_enabled():
            obs_metrics.get_registry().counter(
                "histstore.hits" if hit else "histstore.misses"
            ).inc()

    def __repr__(self) -> str:
        return (
            f"HistogramStore({str(self.root)!r}, hits={self.hits}, "
            f"misses={self.misses})"
        )


def cached_locality_profile(
    trace: "Trace",
    *,
    line_bytes: int = 64,
    warm: bool = True,
    store: "HistogramStore | str | os.PathLike[str] | None" = None,
) -> LocalityProfile:
    """Profile *trace*, recalling the result from *store* when possible.

    Without a store this is exactly :func:`profile_trace`; with one, the
    pass runs at most once per (trace content, line size, warm) on this
    machine.
    """
    if store is None:
        return profile_trace(trace, line_bytes=line_bytes, warm=warm)
    if not isinstance(store, HistogramStore):
        store = HistogramStore(store)
    key = histogram_cache_key(trace.content_digest(), line_bytes, warm)
    profile = store.get(key)
    if profile is None:
        profile = profile_trace(trace, line_bytes=line_bytes, warm=warm)
        store.put(key, profile)
    return profile
