"""Argument-validation helpers shared across the library.

The simulator and the analytical models are configured by many numeric
parameters (cycle counts, rates, concurrencies).  Mis-typed or out-of-range
values produce silently wrong results rather than crashes, so every public
constructor validates its inputs through these helpers and fails fast with a
precise message.
"""

from __future__ import annotations

import math
from typing import Any

__all__ = [
    "require",
    "safe_ratio",
    "check_positive",
    "check_non_negative",
    "check_fraction",
    "check_at_least",
    "check_int",
    "check_power_of_two",
    "check_probability_vector",
]


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with *message* unless *condition* holds."""
    if not condition:
        raise ValueError(message)


def safe_ratio(numerator: float, denominator: float, default: float = 0.0) -> float:
    """``numerator / denominator``, or *default* when the denominator is zero.

    The model quantities this library divides by (``accesses``,
    ``miss_count``, ``active_cycles``, ``cpi_exe``, ...) are legitimately
    zero for empty or degenerate measurement windows, and each such ratio
    has a well-defined limit value there (e.g. a concurrency with no active
    cycles is 1, a rate with no accesses is 0).  Routing every such division
    through this helper makes the limit explicit and is the sanctioned form
    recognized by lint rule NUM001.
    """
    if denominator == 0:
        return default
    return numerator / denominator


def _check_real(name: str, value: Any) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    value = float(value)
    if math.isnan(value):
        raise ValueError(f"{name} must not be NaN")
    return value


def check_positive(name: str, value: Any, *, allow_inf: bool = False) -> float:
    """Validate that *value* is a strictly positive real number."""
    value = _check_real(name, value)
    if not allow_inf and math.isinf(value):
        raise ValueError(f"{name} must be finite, got {value}")
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    return value


def check_non_negative(name: str, value: Any, *, allow_inf: bool = False) -> float:
    """Validate that *value* is a real number >= 0."""
    value = _check_real(name, value)
    if not allow_inf and math.isinf(value):
        raise ValueError(f"{name} must be finite, got {value}")
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_fraction(name: str, value: Any, *, inclusive_high: bool = True) -> float:
    """Validate that *value* lies in [0, 1] (or [0, 1) if not inclusive)."""
    value = _check_real(name, value)
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    if inclusive_high:
        if value > 1:
            raise ValueError(f"{name} must be <= 1, got {value}")
    elif value >= 1:
        raise ValueError(f"{name} must be < 1, got {value}")
    return value


def check_at_least(name: str, value: Any, minimum: float) -> float:
    """Validate that *value* is a finite real number >= *minimum*."""
    value = _check_real(name, value)
    if math.isinf(value):
        raise ValueError(f"{name} must be finite, got {value}")
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value


def check_int(name: str, value: Any, *, minimum: int | None = None) -> int:
    """Validate that *value* is an integer (optionally >= *minimum*)."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if minimum is not None and value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value


def check_power_of_two(name: str, value: Any) -> int:
    """Validate that *value* is a positive power of two."""
    value = check_int(name, value, minimum=1)
    if value & (value - 1):
        raise ValueError(f"{name} must be a power of two, got {value}")
    return value


def check_probability_vector(name: str, values: Any, *, atol: float = 1e-9) -> list[float]:
    """Validate that *values* is a non-empty vector of probabilities summing to 1."""
    try:
        vec = [float(v) for v in values]
    except (TypeError, ValueError) as exc:
        raise TypeError(f"{name} must be an iterable of numbers") from exc
    if not vec:
        raise ValueError(f"{name} must be non-empty")
    for i, v in enumerate(vec):
        if math.isnan(v) or v < 0:
            raise ValueError(f"{name}[{i}] must be >= 0, got {v}")
    total = sum(vec)
    if abs(total - 1.0) > atol:
        raise ValueError(f"{name} must sum to 1 (got {total})")
    return vec
