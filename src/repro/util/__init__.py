"""Shared utilities: argument validation and seeded RNG plumbing."""

from repro.util.rng import derive_seed, make_rng, spawn
from repro.util.validation import (
    check_at_least,
    check_fraction,
    check_int,
    check_non_negative,
    check_positive,
    check_power_of_two,
    check_probability_vector,
    require,
)

__all__ = [
    "check_at_least",
    "check_fraction",
    "check_int",
    "check_non_negative",
    "check_positive",
    "check_power_of_two",
    "check_probability_vector",
    "derive_seed",
    "make_rng",
    "require",
    "spawn",
]
