"""Seeded random-number plumbing.

All stochastic components of the library (trace generators, random
scheduling policy, design-space sampling) draw from a
:class:`numpy.random.Generator` obtained through :func:`make_rng`, so every
experiment is reproducible from a single integer seed.  Independent streams
are derived with :func:`spawn` / :func:`derive_seed` so that changing how
many streams a component consumes does not perturb unrelated components.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["make_rng", "derive_seed", "spawn"]

RngLike = "int | np.random.Generator | None"


def make_rng(seed: "int | np.random.Generator | None" = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator`.

    Accepts an existing generator (returned unchanged), an integer seed, or
    ``None`` for OS entropy.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_seed(base_seed: int, *labels: "str | int") -> int:
    """Deterministically derive a child seed from *base_seed* and labels.

    Uses SHA-256 over the textual labels so that two different label tuples
    practically never collide and the mapping is stable across Python runs
    (unlike ``hash``, which is salted).
    """
    h = hashlib.sha256()
    h.update(str(int(base_seed)).encode())
    for label in labels:
        h.update(b"\x00")
        h.update(str(label).encode())
    return int.from_bytes(h.digest()[:8], "little")


def spawn(base_seed: int, *labels: "str | int") -> np.random.Generator:
    """Return a generator seeded from ``derive_seed(base_seed, *labels)``."""
    return make_rng(derive_seed(base_seed, *labels))
