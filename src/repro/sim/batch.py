"""Vectorized batch engine: step N machine configurations per kernel call.

The Fig. 3 walk and the Table I sweep evaluate many :class:`MachineConfig`
design points over the *same* trace.  The scalar fast path (PR 4) makes one
such run ~1.6x cheaper; this module restructures the problem instead: one
:class:`BatchHierarchySimulator` holds a struct-of-arrays copy of the
per-lane pipeline state (one array dimension per config — a *lane*) and a
single Python-level pass over the shared trace advances every lane with
numpy operations.

Layout (L = number of lanes)::

    p_disp, p_ret          (L,)  dispatch/retire *potentials* (see below)
    lsq                    (L, W) completion times, -1 = free/stale slot
    port_free              (L, max_ports), huge padding for narrow lanes
    l1_tags / l1_age       (L, max_sets, max_ways), tag -1 = invalid way
    dispatch/complete/retire records                    (n, L) int64
    L1 record columns                                   (n_mem, L)

**The potential trick.**  The scalar engines track issue bandwidth as a
``(cycle, count)`` pair with branchy reset logic.  Both dispatch and
retire compress to one integer per lane: ``p = w*cycle + (count - 1)``
with ``count`` in ``[1, w]``.  A bandwidth-limited step is exactly
``p + 1`` (count rolls into the next cycle when it hits ``w``), and a
clamp to cycle ``m > cycle`` is exactly ``w*m`` (count resets to 1), so

    p' = max(p + 1, w*m_1, w*m_2, ...)      and   cycle' = p' // w

reproduces the reference recurrence bit for bit in three numpy ops per
instruction instead of seven.

Only the dominant L1-hit path is vectorized.  The rare L1-miss walk drops
to per-lane scalar code that *inlines* the reference component semantics
the same way the scalar fast path does — in-order MSHR files as
dict + release-heap, L2 banks as a free-time list, L2 LRU as the cache's
own set dicts (``lru_hot_state``), DRAM via each lane's real
:class:`~repro.sim.dram.DRAMModel` — so everything below the L1 costs
plain dict/heap operations and the local clocks/counters are folded back
into the lane's component objects after the pass (exactly the fast path's
fold).  Lanes with an out-of-order L2 MSHR file or an L3 route through the
lane simulator's own ``_l2_miss_walk`` / ``_access_l3`` methods.

The vectorized L1 pieces have exact scalar equivalents:

* dict-ordered LRU == per-lane age arrays with a monotone event counter
  (eviction = argmin age over valid ways; promotion/insert = age <- clock++);
* the port heap's ``heapreplace`` == replace-argmin on a free-time array;
* the LSQ drain/pop == lazy staleness (an entry <= d can never influence a
  later decision because dispatch cycles are monotone per lane), with a
  scalar upper-bound screen so the full-window check costs nothing while
  the window is slack.

Eligibility mirrors the fast path's gate (no prefetcher, no bypass, LRU L1
and L2; the single-core L1 MSHR file is in-order by construction);
:class:`BatchHierarchySimulator` raises :class:`ConfigError` eagerly on
ineligible configs.  The three-way equivalence suite
(``tests/sim/test_engine_equivalence.py``) pins every
``SimulationResult`` field to the reference engine bit for bit.
"""

from __future__ import annotations

import heapq
from time import perf_counter

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.profile import profiling_enabled
from repro.runtime.errors import ConfigError
from repro.sim.cache import FunctionalCache
from repro.sim.engine import (
    HierarchySimulator,
    SimulationResult,
    build_simulation_result,
)
from repro.sim.params import MachineConfig
from repro.util.validation import check_int
from repro.workloads.trace import Trace

__all__ = ["BatchHierarchySimulator", "batch_eligible", "partition_eligible"]

_HUGE = np.int64(2) ** 62


def batch_eligible(config: MachineConfig) -> bool:
    """Whether *config* can run on the vectorized batch kernel.

    The gate mirrors :meth:`HierarchySimulator._use_fast_path`: no
    prefetcher, no L1 bypass detector, LRU L1 and L2.  (The L1 MSHR file
    the engine builds for a single core is always in-order, so that clause
    of the fast-path gate is structural here.)
    """
    return (
        config.prefetch is None
        and config.l1_bypass is None
        and config.l1.replacement == "lru"
        and config.l2.replacement == "lru"
    )


def partition_eligible(
    configs: "list[MachineConfig]",
) -> "tuple[list[int], list[int]]":
    """Split config indices into (batch-eligible, scalar-fallback) lists."""
    ok: "list[int]" = []
    fallback: "list[int]" = []
    for idx, config in enumerate(configs):
        (ok if batch_eligible(config) else fallback).append(idx)
    return ok, fallback


class BatchHierarchySimulator:
    """Simulate one shared :class:`Trace` on N configs simultaneously.

    Like :class:`HierarchySimulator`, an instance carries warm state
    (cache contents, port/bank/DRAM timing) across :meth:`run` calls;
    construct a fresh instance for independent experiments.  ``resume``
    and :meth:`HierarchySimulator.reconfigure` are not supported — batch
    runs are whole-trace evaluations of fixed design points.
    """

    def __init__(self, configs: "list[MachineConfig]", *, seed: int = 0) -> None:
        configs = list(configs)
        if not configs:
            raise ConfigError("batch simulation needs at least one config")
        bad = [c.name for c in configs if not batch_eligible(c)]
        if bad:
            raise ConfigError(
                "engine='batch' requires no prefetcher, no L1 bypass and LRU "
                f"L1/L2; ineligible configs: {bad} (use engine='auto' per "
                "config, or partition_eligible() to split the batch)"
            )
        self.configs = configs
        self.seed = seed
        self.n_lanes = L = len(configs)
        #: Per-lane delegates.  Everything below the L1 — the MSHR files,
        #: L2 banks/LRU/fill queue, optional L3, DRAM — lives in *these*
        #: objects; the kernel's inlined miss walk mutates their dicts and
        #: heaps in place and folds local clocks/counters back after each
        #: run, so the post-run object state matches the reference loop.
        self.lane_sims = [
            HierarchySimulator(c, seed=seed, engine="reference") for c in configs
        ]

        i64 = np.int64
        self._issue_w = np.array([c.core.issue_width for c in configs], dtype=i64)
        self._rob = np.array([c.core.rob_size for c in configs], dtype=i64)
        self._iw = np.array([c.core.iw_size for c in configs], dtype=i64)
        self._h1 = np.array([c.l1_hit_time for c in configs], dtype=i64)
        self._occ = np.array(
            [1 if c.l1_pipelined else c.l1_hit_time for c in configs], dtype=i64
        )
        self._min_iw = int(self._iw.min())
        self._min_rob = int(self._rob.min())
        self._max_rob = int(self._rob.max())
        self._homo_rob = self._min_rob == self._max_rob

        # L1 geometry, per lane; the arrays are padded to the widest lane.
        self._off = np.array([c.l1.offset_bits for c in configs], dtype=i64)
        self._sbits = np.array(
            [c.l1.n_sets.bit_length() - 1 for c in configs], dtype=i64
        )
        self._smask = np.array([c.l1.n_sets - 1 for c in configs], dtype=i64)
        self._off_i = [c.l1.offset_bits for c in configs]
        self._sbits_i = [c.l1.n_sets.bit_length() - 1 for c in configs]
        self._smask_i = [c.l1.n_sets - 1 for c in configs]
        self._assoc = [c.l1.associativity for c in configs]
        self._homo_l1 = all(c.l1 == configs[0].l1 for c in configs)
        max_sets = max(c.l1.n_sets for c in configs)
        max_ways = max(self._assoc)
        self._max_ways = max_ways
        self._l1_tags = np.full((L, max_sets, max_ways), -1, dtype=i64)
        self._l1_age = np.zeros((L, max_sets, max_ways), dtype=i64)
        self._l1_clock = np.array(list(self._assoc), dtype=i64)
        # Flat per-lane views for the scalar fill path (same memory), plus
        # a plain-list mirror of the tags so the fill drain scans Python
        # lists instead of round-tripping numpy rows.  Only the drain and
        # the warm loader write tags, so the mirror stays in sync.
        self._l1_tags_flat = [self._l1_tags[lane].reshape(-1) for lane in range(L)]
        self._l1_age_flat = [self._l1_age[lane].reshape(-1) for lane in range(L)]
        self._l1_tags_list = [self._l1_tags_flat[lane].tolist() for lane in range(L)]

        # L1 ports: free-time array padded with a huge sentinel for narrow
        # lanes, so the vectorized replace-argmin never grants a pad port.
        max_ports = max(c.l1_ports for c in configs)
        self._max_ports = max_ports
        self._n_ports = [c.l1_ports for c in configs]
        self._port_free = np.full((L, max_ports), _HUGE, dtype=i64)
        for lane, c in enumerate(configs):
            self._port_free[lane, : c.l1_ports] = 0

        # Per-lane L1 fill queues (heaps) + vectorized due check.
        self._fills: "list[list[tuple[int, int]]]" = [[] for _ in range(L)]
        self._next_fill = np.full(L, _HUGE, dtype=i64)

        self._lane_idx = np.arange(L, dtype=np.intp)
        #: Whether any run or warm has touched the cache arrays (selects
        #: the cheap deduplicated warm path for pristine simulators).
        self._touched = False

    # -- warm-up ---------------------------------------------------------
    def warm_caches(self, trace: Trace) -> None:
        """Touch the trace's addresses functionally in every lane.

        Matches :meth:`HierarchySimulator.warm_caches` per lane.  On a
        pristine simulator the warm walk runs once per *distinct* cache
        geometry and the resulting contents are copied across lanes; after
        any run each lane is warmed from its own current contents.
        """
        addresses = trace.memory_addresses
        if not self._touched:
            scratch_l1: "dict[object, FunctionalCache]" = {}
            scratch_l2: "dict[object, FunctionalCache]" = {}
            scratch_l3: "dict[object, FunctionalCache]" = {}
            for lane, cfg in enumerate(self.configs):
                sim = self.lane_sims[lane]
                c1 = scratch_l1.get(cfg.l1)
                if c1 is None:
                    c1 = FunctionalCache(cfg.l1, seed=self.seed)
                    c1.warm_lookup_array(addresses)
                    scratch_l1[cfg.l1] = c1
                self._load_l1_lane(lane, c1)
                c2 = scratch_l2.get(cfg.l2)
                if c2 is None:
                    c2 = FunctionalCache(cfg.l2, seed=self.seed + 1)
                    c2.warm_lookup_array(addresses)
                    scratch_l2[cfg.l2] = c2
                sim.l2_cache._sets.clear()
                sim.l2_cache._sets.update(
                    {k: dict(v) for k, v in c2._sets.items()}
                )
                if sim.l3_cache is not None:
                    c3 = scratch_l3.get(cfg.l3)
                    if c3 is None:
                        c3 = FunctionalCache(cfg.l3, seed=self.seed + 2)
                        c3.warm_lookup_array(addresses)
                        scratch_l3[cfg.l3] = c3
                    sim.l3_cache._sets.clear()
                    sim.l3_cache._sets.update(
                        {k: dict(v) for k, v in c3._sets.items()}
                    )
        else:
            for lane in range(self.n_lanes):
                sim = self.lane_sims[lane]
                c1 = self._l1_lane_to_cache(lane)
                c1.warm_lookup_array(addresses)
                self._load_l1_lane(lane, c1)
                sim.l2_cache.warm_lookup_array(addresses)
                if sim.l3_cache is not None:
                    sim.l3_cache.warm_lookup_array(addresses)
        self._touched = True

    def _load_l1_lane(self, lane: int, cache: FunctionalCache) -> None:
        """Convert a dict-LRU cache's contents into lane tag/age arrays.

        Dict insertion order (oldest first) becomes ascending age, so the
        array kernel's argmin-age eviction picks exactly the dict head.
        """
        tags = self._l1_tags[lane]
        age = self._l1_age[lane]
        tags[:] = -1
        age[:] = 0
        for set_idx, s in cache._sets.items():
            for way, tag in enumerate(s):
                tags[set_idx, way] = tag
                age[set_idx, way] = way
        # Future promotions must always be newer than any resident age.
        self._l1_clock[lane] = self._assoc[lane]
        self._l1_tags_list[lane] = self._l1_tags_flat[lane].tolist()

    def _l1_lane_to_cache(self, lane: int) -> FunctionalCache:
        """Rebuild a dict-LRU cache from one lane's tag/age arrays."""
        cache = FunctionalCache(self.configs[lane].l1, seed=self.seed)
        tags = self._l1_tags[lane]
        age = self._l1_age[lane]
        assoc = self._assoc[lane]
        n_sets = self._smask_i[lane] + 1
        for set_idx in range(n_sets):
            row_t = tags[set_idx, :assoc]
            valid = np.nonzero(row_t >= 0)[0]
            if valid.size == 0:
                continue
            order = valid[np.argsort(age[set_idx, :assoc][valid], kind="stable")]
            cache._sets[set_idx] = {int(row_t[w]): None for w in order}
        return cache

    def _drain_lane_fills(self, lane: int, now: int) -> "tuple[int, int]":
        """Apply one lane's due L1 fills to its tag/age arrays.

        Mirrors the reference fill semantics (``_FillQueue.apply_until`` +
        dict-LRU ``insert``): a resident block refreshes its position, an
        absent block fills a free way or evicts the least-recent one.
        Pure-Python list scans over the (tiny) set row — an order of
        magnitude cheaper per fill than numpy row kernels.  Returns
        ``(evictions, fills_applied)``.
        """
        heap = self._fills[lane]
        mirror = self._l1_tags_list[lane]
        tags = self._l1_tags_flat[lane]
        age = self._l1_age_flat[lane]
        off = self._off_i[lane]
        sbits = self._sbits_i[lane]
        smask = self._smask_i[lane]
        assoc = self._assoc[lane]
        mw = self._max_ways
        clock = int(self._l1_clock[lane])
        evict = 0
        npop = 0
        heappop = heapq.heappop
        while heap and heap[0][0] <= now:
            _, addr = heappop(heap)
            npop += 1
            block = addr >> off
            base = (block & smask) * mw
            tag = block >> sbits
            end = base + assoc
            row = mirror[base:end]
            if tag in row:
                way = row.index(tag)  # resident: refresh position only
            else:
                if -1 in row:
                    way = row.index(-1)  # free way
                else:
                    ages = age[base:end].tolist()
                    way = ages.index(min(ages))  # dict head == oldest age
                    evict += 1
                pos = base + way
                mirror[pos] = tag
                tags[pos] = tag
            age[base + way] = clock
            clock += 1
        self._l1_clock[lane] = clock
        self._next_fill[lane] = heap[0][0] if heap else _HUGE
        return evict, npop

    # -- the kernel ------------------------------------------------------
    def run(
        self,
        trace: Trace,
        *,
        perfect: bool = False,
        start_cycle: int = 0,
        stop_cycle: "int | None" = None,
    ) -> "list[SimulationResult]":
        """Execute *trace* on every lane; one result per config, in order.

        Semantics per lane are exactly ``HierarchySimulator.run`` with the
        same keyword arguments (``resume`` is unsupported).  Frozen lanes
        (those whose dispatch reached ``stop_cycle``) drop out of the
        persistent-state updates but the pass continues until every lane
        has stopped or the trace is exhausted.

        With observability enabled the whole call is one ``sim.run_batch``
        span and each lane's finished result is folded into the metrics
        registry exactly as a scalar run would be, so ``sim.*`` counters
        are engine-independent.
        """
        if not (obs_trace.tracing_enabled() or obs_metrics.metrics_enabled()):
            return self._run_kernel(
                trace, perfect=perfect, start_cycle=start_cycle,
                stop_cycle=stop_cycle,
            )
        with obs_trace.span(
            "sim.run_batch", trace=trace.name, lanes=self.n_lanes,
            perfect=perfect,
        ) as span:
            stall_before = [
                (sim.l1_mshrs.full_stall_cycles,
                 sim.l2_mshrs.full_stall_cycles)
                for sim in self.lane_sims
            ]
            results = self._run_kernel(
                trace, perfect=perfect, start_cycle=start_cycle,
                stop_cycle=stop_cycle,
            )
            span.set(
                instructions=sum(r.instructions_executed for r in results),
                cycles=max(r.total_cycles for r in results),
            )
            if obs_metrics.metrics_enabled():
                for sim, result, before in zip(self.lane_sims, results,
                                               stall_before):
                    sim._record_metrics(result, before)
        return results

    def _run_kernel(
        self,
        trace: Trace,
        *,
        perfect: bool = False,
        start_cycle: int = 0,
        stop_cycle: "int | None" = None,
    ) -> "list[SimulationResult]":
        """The vectorized issue loop behind :meth:`run` (no instrumentation)."""
        n = trace.n_instructions
        check_int("n_instructions", n, minimum=0)
        check_int("start_cycle", start_cycle, minimum=0)
        L = self.n_lanes
        lane_idx = self._lane_idx
        self._touched = True

        is_mem_l = trace.is_mem.tolist()
        address_l = trace.address.tolist()
        depends = trace.depends
        depends_l = depends.tolist() if depends is not None else None
        has_dep = depends_l is not None

        i64 = np.int64
        w_arr = self._issue_w
        min_rob = self._min_rob
        max_rob = self._max_rob
        rob0 = min_rob
        homo_rob = self._homo_rob
        rob_arr = self._rob
        iw_arr = self._iw
        h1_arr = self._h1
        occ_arr = self._occ
        min_iw = self._min_iw

        # Records: one row per instruction / memory access, one column per
        # lane.  Per-lane results are column slices of these at the end.
        n_mem_total = trace.n_mem
        dispatch_a = np.zeros((n, L), dtype=i64)
        complete_a = np.zeros((n, L), dtype=i64)
        retire_a = np.zeros((n, L), dtype=i64)
        l1_hs = np.zeros((n_mem_total, L), dtype=i64)
        l1_he = np.zeros((n_mem_total, L), dtype=i64)
        l1_ms = np.zeros((n_mem_total, L), dtype=i64)
        l1_me = np.zeros((n_mem_total, L), dtype=i64)
        l1_miss = np.zeros((n_mem_total, L), dtype=bool)
        l1_sec = np.zeros((n_mem_total, L), dtype=bool)
        l1_cmp = np.zeros((n_mem_total, L), dtype=i64)
        l2_index = np.full((n_mem_total, L), -1, dtype=i64)

        # Per-lane L2/L3/memory record columns, fed by the miss walk.
        l2_rec = [
            tuple([] for _ in range(9)) for _ in range(L)
        ]  # l2_hs, l2_he, l2_ms, l2_me, l2_miss, l2_sec, mem_index, mem_s, mem_e
        lane_sims = self.lane_sims
        for sim in lane_sims:
            sim._l3_rec = tuple([] for _ in range(7))
            sim._l2_l3_index = []

        # Pipeline state as potentials (fresh per run; no resume support).
        p_d = w_arr * start_cycle - 1
        last_mem_complete = np.full(L, start_cycle, dtype=i64)
        last_compute_complete = np.full(L, start_cycle, dtype=i64)

        # Retire is not stepped per instruction: the recurrence
        # ``p_r(i) = max(p_r(i-1) + 1, w*c_i)`` unrolls to
        # ``p_r(i) = i + max(q0, max_{k<=i}(w*c_k - k))`` — a running
        # maximum — so whole blocks of retire rows fall out of one
        # ``maximum.accumulate`` sweep.  The only in-loop consumer is the
        # ROB clamp, which reads retire rows at lag >= min_rob, so
        # flushing a block every ``B = min_rob`` instructions always stays
        # ahead of it; ``wret_a`` caches ``w*retire`` so the clamp itself
        # is a single ``maximum``.  Compute completions are derived inside
        # the flush (``dispatch + 1``), so the main loop stores completion
        # rows only for memory instructions.
        B = min_rob if min_rob > 0 else 1
        wret_a = np.empty((n, L), dtype=i64)
        q_carry = w_arr * (start_cycle - 1)
        scan_buf = np.empty((min(B, n) if n else 1, L), dtype=i64)
        idx_col = np.arange(n, dtype=i64)[:, None]
        comp_col = (~trace.is_mem)[:, None]
        flushed = 0
        flush_at = B

        def _flush_retire(i0: int, i1: int) -> None:
            cb = complete_a[i0:i1]
            np.add(dispatch_a[i0:i1], 1, out=cb, where=comp_col[i0:i1])
            sb = scan_buf[: i1 - i0]
            np.multiply(cb, w_arr, out=sb)
            np.subtract(sb, idx_col[i0:i1], out=sb)
            np.maximum.accumulate(sb, axis=0, out=sb)
            np.maximum(sb, q_carry, out=sb)
            np.copyto(q_carry, sb[-1])
            np.add(sb, idx_col[i0:i1], out=sb)
            rb = retire_a[i0:i1]
            np.floor_divide(sb, w_arr, out=rb)
            np.multiply(rb, w_arr, out=wret_a[i0:i1])

        # LSQ: completion times, -1 = free/stale slot.  Entries <= the
        # current dispatch cycle can never influence a later decision
        # (dispatch is monotone per lane), so they are *logically* drained
        # and only compacted when the shared append cursor runs off the
        # end.  Order within a row is irrelevant: the window check only
        # needs the count and minimum of live entries.
        max_iw = int(iw_arr.max())
        W = max_iw + 64
        lsq = np.full((L, W), -1, dtype=i64)
        lu = 0  # shared append cursor (uniform across lanes)
        lsq_ub = 0  # conservative upper bound on any lane's live entries
        stale_buf = np.empty((L, W), dtype=bool)
        lsq_buf = np.empty((L, W), dtype=i64)
        cnt_buf = np.empty(L, dtype=i64)
        m_buf = np.empty(L, dtype=i64)
        add_reduce = np.add.reduce
        max_reduce = np.maximum.reduce
        min_reduce = np.minimum.reduce

        port_free = self._port_free
        single_port = self._max_ports == 1
        two_port = self._max_ports == 2
        port_free0 = port_free[:, 0]
        port_free1 = port_free[:, 1] if self._max_ports >= 2 else None
        next_fill = self._next_fill
        l1_tags = self._l1_tags
        l1_age = self._l1_age
        l1_clock = self._l1_clock
        homo_l1 = self._homo_l1
        off0 = self._off_i[0]
        sbits0 = self._sbits_i[0]
        smask0 = self._smask_i[0]
        off_i = self._off_i
        off_arr = self._off
        sbits_arr = self._sbits
        smask_arr = self._smask
        fills = self._fills
        fills_pending = sum(len(h) for h in fills)
        heappush = heapq.heappush
        heappop = heapq.heappop
        drain = self._drain_lane_fills

        # Per-lane miss-walk bindings: the lane objects' own dicts, heaps
        # and free-time lists (mutated in place), plus local clocks and
        # counters folded back after the loop — the fast path's layout,
        # one list entry per lane.
        l1outl = [s.l1_mshrs._outstanding for s in lane_sims]
        l1rell = [s.l1_mshrs._releases for s in lane_sims]
        l1nowl = [s.l1_mshrs._now for s in lane_sims]
        l1capl = [s.l1_mshrs.capacity for s in lane_sims]
        l1mprim = [0] * L
        l1msec = [0] * L
        l1mstall = [0] * L
        l1mpeak = [s.l1_mshrs.peak_occupancy for s in lane_sims]
        l1evict = [0] * L
        l1tol2 = [c.l1_to_l2_delay for c in self.configs]
        h2l = [c.l2_hit_time for c in self.configs]
        l2occl = [
            1 if c.l2_pipelined else c.l2_hit_time for c in self.configs
        ]
        l2freel = [s.l2_banks._free_times for s in lane_sims]
        l2bmaskl = [s.l2_banks._mask for s in lane_sims]
        l2grants = [0] * L
        l2wait = [0] * L
        l2setsl, l2smaskl, l2sbitsl, l2offl = [], [], [], []
        for s in lane_sims:
            sets2, smask2, sbits2, off2 = s.l2_cache.lru_hot_state()
            l2setsl.append(sets2)
            l2smaskl.append(smask2)
            l2sbitsl.append(sbits2)
            l2offl.append(off2)
        l2assocl = [c.l2.associativity for c in self.configs]
        l2hitsn = [0] * L
        l2missn = [0] * L
        l2evictn = [0] * L
        l2fheapl = [s._l2_fills._heap for s in lane_sims]
        l2outl = [s.l2_mshrs._outstanding for s in lane_sims]
        l2rell = [s.l2_mshrs._releases for s in lane_sims]
        l2nowl = [s.l2_mshrs._now for s in lane_sims]
        l2capl = [s.l2_mshrs.capacity for s in lane_sims]
        l2inl = [s.l2_mshrs.in_order for s in lane_sims]
        l2mprim = [0] * L
        l2msec = [0] * L
        l2mstall = [0] * L
        l2mpeakl = [s.l2_mshrs.peak_occupancy for s in lane_sims]
        hasl3 = [s.l3_cache is not None for s in lane_sims]
        accl3 = [s._access_l3 for s in lane_sims]
        l2tol3 = [c.l2_to_l3_delay for c in self.configs]
        l2tomem = [c.l2_to_mem_delay for c in self.configs]
        lastl2 = [s._last_l2_req for s in lane_sims]
        lastmem = [s._last_mem_req for s in lane_sims]
        draml = [s.dram.access for s in lane_sims]
        walkl = [s._l2_miss_walk for s in lane_sims]
        l2l3app = [s._l2_l3_index.append for s in lane_sims]

        # Scratch buffers (allocation-free hot loop) + local ufunc binds
        # (a dozen global+attribute lookups per instruction add up).
        np_add = np.add
        np_mul = np.multiply
        np_max = np.maximum
        np_fdiv = np.floor_divide
        np_copyto = np.copyto
        np_le = np.less_equal
        np_cnz = np.count_nonzero
        np_not = np.logical_not
        d = np.empty(L, dtype=i64)
        c = np.empty(L, dtype=i64)
        t_port = np.empty(L, dtype=i64)
        hit_end = np.empty(L, dtype=i64)
        tmp = np.empty(L, dtype=i64)
        b2 = np.empty(L, dtype=bool)
        b3 = np.empty(L, dtype=bool)
        b_arg = np.empty(L, dtype=bool)
        bhit = np.empty(L, dtype=bool)
        bdue = np.empty(L, dtype=bool)
        eqbuf = np.empty((L, self._max_ways), dtype=bool)
        blk_a = np.empty(L, dtype=i64)
        si_a = np.empty(L, dtype=i64)
        tg_a = np.empty(L, dtype=i64)

        # Row views as a Python list: list indexing is ~3x cheaper than
        # ndarray.__getitem__ for the one row the ROB clamp reads per
        # instruction.
        wret_rows = list(wret_a) if n else []

        stop = stop_cycle
        active = np.ones(L, dtype=bool)
        act_idx = lane_idx
        n_active = L
        partial = False
        executed = [n] * L
        mem_executed = [n_mem_total] * L

        profile_phases = profiling_enabled()
        t_loop_start = perf_counter() if profile_phases else 0.0

        mem_i = 0
        for i in range(n):
            # --- dispatch: bandwidth + ROB + (memory) window slots -------
            if i == flush_at:
                _flush_retire(flushed, i)
                flushed = i
                flush_at += B
            np_add(p_d, 1, out=p_d)
            if i >= min_rob:
                if homo_rob:
                    np_max(p_d, wret_rows[i - rob0], out=p_d)
                else:
                    np.subtract(i, rob_arr, out=tmp)
                    if i >= max_rob:
                        np_max(p_d, wret_a[tmp, lane_idx], out=p_d)
                    else:
                        # Lanes with rob > i have no ROB constraint yet;
                        # clamp their (negative) gather index to row 0 and
                        # mask the result away.
                        np_le(rob_arr, i, out=b2)
                        np_max(tmp, 0, out=tmp)
                        np_max(p_d, wret_a[tmp, lane_idx], out=p_d, where=b2)
            mem_op = is_mem_l[i]
            if mem_op:
                if has_dep and depends_l[i]:
                    np_mul(last_mem_complete, w_arr, out=tmp)
                    np_max(p_d, tmp, out=p_d)
                np_fdiv(p_d, w_arr, out=d)
                if lsq_ub >= min_iw:
                    # Exact window check: count live entries, pop the
                    # earliest completion for full lanes (it is > d after
                    # the logical drain, so d simply becomes it and the
                    # popped entry goes stale by construction).  All raw
                    # ufunc reductions — the np.count_nonzero/ndarray.min
                    # wrappers cost more than the scans themselves here.
                    np_le(lsq, d[:, None], out=stale_buf)
                    add_reduce(stale_buf, axis=1, dtype=i64, out=cnt_buf)
                    np.subtract(W, cnt_buf, out=cnt_buf)
                    np.greater_equal(cnt_buf, iw_arr, out=b2)
                    if np_cnz(b2):
                        np_copyto(lsq_buf, lsq)
                        np_copyto(lsq_buf, _HUGE, where=stale_buf)
                        min_reduce(lsq_buf, axis=1, out=m_buf)
                        np_copyto(d, m_buf, where=b2)
                        np_mul(m_buf, w_arr, out=tmp)
                        np_copyto(p_d, tmp, where=b2)
                    lsq_ub = int(max_reduce(cnt_buf))
            else:
                if has_dep and depends_l[i]:
                    np_mul(last_compute_complete, w_arr, out=tmp)
                    np_max(p_d, tmp, out=p_d)
                np_fdiv(p_d, w_arr, out=d)

            if stop is not None:
                np.greater_equal(d, stop, out=b2)
                b2 &= active
                if np_cnz(b2):
                    for lf in b2.nonzero()[0]:
                        lf = int(lf)
                        executed[lf] = i
                        mem_executed[lf] = mem_i
                    active &= ~b2
                    partial = True
                    act_idx = active.nonzero()[0]
                    n_active = int(act_idx.size)
                    if n_active == 0:
                        break

            dispatch_a[i] = d

            # --- execute -------------------------------------------------
            if mem_op:
                if perfect:
                    np_add(d, h1_arr, out=c)
                    l1_hs[mem_i] = d
                    l1_cmp[mem_i] = c
                else:
                    addr = address_l[i]
                    # L1 port grant (replace-argmin == heapreplace).
                    if single_port:
                        np.maximum(d, port_free0, out=t_port)
                        if partial:
                            np.add(t_port, occ_arr, out=tmp)
                            np.copyto(port_free0, tmp, where=active)
                        else:
                            np.add(t_port, occ_arr, out=port_free0)
                    elif two_port:
                        # Replace-argmin on two columns; ties pick either
                        # port (the free-time multiset is all that matters).
                        np.minimum(port_free0, port_free1, out=tmp)
                        np.maximum(d, tmp, out=t_port)
                        np.less(port_free1, port_free0, out=b_arg)
                        np.add(t_port, occ_arr, out=tmp)
                        if partial:
                            np.logical_and(b_arg, active, out=b3)
                            np.copyto(port_free1, tmp, where=b3)
                            np.logical_not(b_arg, out=b_arg)
                            np.logical_and(b_arg, active, out=b3)
                            np.copyto(port_free0, tmp, where=b3)
                        else:
                            np.copyto(port_free1, tmp, where=b_arg)
                            np.logical_not(b_arg, out=b_arg)
                            np.copyto(port_free0, tmp, where=b_arg)
                    else:
                        port_free.min(axis=1, out=tmp)
                        np.maximum(d, tmp, out=t_port)
                        am = port_free.argmin(axis=1)
                        np.add(t_port, occ_arr, out=tmp)
                        if partial:
                            port_free[act_idx, am[act_idx]] = tmp[act_idx]
                        else:
                            port_free[lane_idx, am] = tmp
                    # Due L1 fills (only lanes with a pending fill).
                    if fills_pending:
                        np.less_equal(next_fill, t_port, out=bdue)
                        if partial:
                            bdue &= active
                        if np.count_nonzero(bdue):
                            for ld in bdue.nonzero()[0]:
                                ld = int(ld)
                                ev, npop = drain(ld, int(t_port[ld]))
                                l1evict[ld] += ev
                                fills_pending -= npop
                    # L1 LRU probe.
                    if homo_l1:
                        block0 = addr >> off0
                        si = block0 & smask0
                        tg = block0 >> sbits0
                        row_t = l1_tags[:, si]
                        np.equal(row_t, tg, out=eqbuf)
                    else:
                        np.right_shift(addr, off_arr, out=blk_a)
                        np.bitwise_and(blk_a, smask_arr, out=si_a)
                        np.right_shift(blk_a, sbits_arr, out=tg_a)
                        row_t = l1_tags[lane_idx, si_a]
                        np.equal(row_t, tg_a[:, None], out=eqbuf)
                    np.logical_or.reduce(eqbuf, axis=1, out=bhit)
                    np_add(t_port, h1_arr, out=hit_end)
                    np_copyto(c, hit_end)
                    if partial:
                        bhit &= active
                    n_hit = np_cnz(bhit)
                    if n_hit:
                        hidx = bhit.nonzero()[0]
                        way = eqbuf.argmax(axis=1)
                        if homo_l1:
                            l1_age[hidx, si, way[hidx]] = l1_clock[hidx]
                        else:
                            l1_age[hidx, si_a[hidx], way[hidx]] = l1_clock[hidx]
                        np_add(l1_clock, 1, out=l1_clock, where=bhit)
                    if n_hit != n_active:
                        np_not(bhit, out=b2)
                        if partial:
                            b2 &= active
                        midx = b2.nonzero()[0]
                        l1_miss[mem_i, midx] = True
                        # Per-miss results are collected in plain lists and
                        # written back with one fancy store per array —
                        # scalar ``arr[i, j] = v`` assignments inside the
                        # walk cost more than the walk's own dict/heap work.
                        hl = hit_end.tolist()
                        dn_l: "list[int]" = []
                        sec_l: "list[int]" = []
                        prim_l: "list[int]" = []
                        prim_rows: "list[int]" = []
                        prim_nf: "list[int]" = []
                        for lm in midx.tolist():
                            he = hl[lm]
                            block = addr >> off_i[lm]
                            # L1 MSHR present, inline (in-order file):
                            # clamp to the never-rewinding clock, expire
                            # returned fills, coalesce or allocate.
                            out1 = l1outl[lm]
                            rel1 = l1rell[lm]
                            arr = he if he >= l1nowl[lm] else l1nowl[lm]
                            while rel1 and rel1[0][0] <= arr:
                                rb = heappop(rel1)[1]
                                f = out1.get(rb)
                                if f is not None and f <= arr:
                                    del out1[rb]
                            fill = out1.get(block)
                            if fill is not None and fill > arr:
                                # Secondary miss: ride the pending fill.
                                l1msec[lm] += 1
                                done = fill if fill > he else he
                                sec_l.append(lm)
                            else:
                                grant = arr
                                if len(out1) >= l1capl[lm]:
                                    e1 = rel1[0][0]
                                    if e1 > grant:
                                        grant = e1
                                    while rel1 and rel1[0][0] <= grant:
                                        rb = heappop(rel1)[1]
                                        f = out1.get(rb)
                                        if f is not None and f <= grant:
                                            del out1[rb]
                                l1nowl[lm] = grant
                                l1mprim[lm] += 1
                                l1mstall[lm] += grant - arr
                                # L2 request (in-order miss queue: clamp).
                                t_l2 = grant + l1tol2[lm]
                                if t_l2 < lastl2[lm]:
                                    t_l2 = lastl2[lm]
                                lastl2[lm] = t_l2
                                # L2 bank grant, inline.
                                l2free = l2freel[lm]
                                bank = block & l2bmaskl[lm]
                                bfree = l2free[bank]
                                t_bank = t_l2 if t_l2 >= bfree else bfree
                                l2free[bank] = t_bank + l2occl[lm]
                                l2grants[lm] += 1
                                l2wait[lm] += t_bank - t_l2
                                # Due L2 fills, inline LRU insert.
                                l2fh = l2fheapl[lm]
                                l2sets = l2setsl[lm]
                                l2sb = l2sbitsl[lm]
                                l2sm = l2smaskl[lm]
                                l2ob = l2offl[lm]
                                while l2fh and l2fh[0][0] <= t_l2:
                                    fb = heappop(l2fh)[1] >> l2ob
                                    ft = fb >> l2sb
                                    fi = fb & l2sm
                                    fs = l2sets.get(fi)
                                    if fs is None:
                                        l2sets[fi] = {ft: None}
                                    elif ft in fs:
                                        del fs[ft]
                                        fs[ft] = None
                                    else:
                                        if len(fs) >= l2assocl[lm]:
                                            del fs[next(iter(fs))]
                                            l2evictn[lm] += 1
                                        fs[ft] = None
                                # L2 LRU probe, inline.
                                (rl2hs, rl2he, rl2ms, rl2me, rl2miss,
                                 rl2sec, rmemi, rmems, rmeme) = l2_rec[lm]
                                l2b = addr >> l2ob
                                l2t = l2b >> l2sb
                                s2 = l2sets.get(l2b & l2sm)
                                l2_row = len(rl2hs)
                                l2he_t = t_bank + h2l[lm]
                                rl2hs.append(t_bank)
                                rl2he.append(l2he_t)
                                if s2 is not None and l2t in s2:
                                    del s2[l2t]
                                    s2[l2t] = None
                                    l2hitsn[lm] += 1
                                    rl2ms.append(0)
                                    rl2me.append(0)
                                    rl2miss.append(False)
                                    rl2sec.append(False)
                                    rmemi.append(-1)
                                    l2l3app[lm](-1)
                                    data = l2he_t + l1tol2[lm]
                                elif not l2inl[lm]:
                                    l2missn[lm] += 1
                                    data = walkl[lm](
                                        addr, block, l2he_t,
                                        rl2ms, rl2me, rl2miss, rl2sec,
                                        rmemi, rmems, rmeme,
                                    ) + l1tol2[lm]
                                else:
                                    l2missn[lm] += 1
                                    rl2miss.append(True)
                                    # L2 MSHR present, inline (in-order).
                                    out2 = l2outl[lm]
                                    rel2 = l2rell[lm]
                                    arr2 = (
                                        l2he_t if l2he_t >= l2nowl[lm]
                                        else l2nowl[lm]
                                    )
                                    while rel2 and rel2[0][0] <= arr2:
                                        rb2 = heappop(rel2)[1]
                                        f2 = out2.get(rb2)
                                        if f2 is not None and f2 <= arr2:
                                            del out2[rb2]
                                    fill2 = out2.get(block)
                                    if fill2 is not None and fill2 > arr2:
                                        l2msec[lm] += 1
                                        rl2sec.append(True)
                                        rmemi.append(-1)
                                        l2l3app[lm](-1)
                                        mem_ready = (
                                            fill2 if fill2 > l2he_t
                                            else l2he_t
                                        )
                                    else:
                                        grant2 = arr2
                                        if len(out2) >= l2capl[lm]:
                                            e2 = rel2[0][0]
                                            if e2 > grant2:
                                                grant2 = e2
                                            while rel2 and rel2[0][0] <= grant2:
                                                rb2 = heappop(rel2)[1]
                                                f2 = out2.get(rb2)
                                                if f2 is not None and f2 <= grant2:
                                                    del out2[rb2]
                                        l2nowl[lm] = grant2
                                        l2mprim[lm] += 1
                                        l2mstall[lm] += grant2 - arr2
                                        rl2sec.append(False)
                                        if hasl3[lm]:
                                            l3_row, mem_ready = accl3[lm](
                                                addr, block,
                                                grant2 + l2tol3[lm],
                                                rmems, rmeme,
                                            )
                                            rmemi.append(-1)
                                            l2l3app[lm](l3_row)
                                        else:
                                            t_mem = grant2 + l2tomem[lm]
                                            if t_mem < lastmem[lm]:
                                                t_mem = lastmem[lm]
                                            lastmem[lm] = t_mem
                                            dres = draml[lm](block, t_mem)
                                            rmemi.append(len(rmems))
                                            rmems.append(dres.service_start)
                                            rmeme.append(dres.service_end)
                                            mem_ready = (
                                                dres.data_ready + l2tomem[lm]
                                            )
                                            l2l3app[lm](-1)
                                        heappush(l2fh, (mem_ready, addr))
                                        out2[block] = mem_ready
                                        heappush(rel2, (mem_ready, block))
                                        occ2 = len(out2)
                                        if occ2 > l2mpeakl[lm]:
                                            l2mpeakl[lm] = occ2
                                    rl2ms.append(l2he_t)
                                    rl2me.append(
                                        mem_ready if mem_ready > l2he_t
                                        else l2he_t
                                    )
                                    data = mem_ready + l1tol2[lm]
                                prim_l.append(lm)
                                prim_rows.append(l2_row)
                                # L1 fill + MSHR completion, inline.
                                fh = fills[lm]
                                heappush(fh, (data, addr))
                                prim_nf.append(fh[0][0])
                                out1[block] = data
                                heappush(rel1, (data, block))
                                occ1 = len(out1)
                                if occ1 > l1mpeak[lm]:
                                    l1mpeak[lm] = occ1
                                done = data if data > he else he
                            dn_l.append(done)
                        c[midx] = dn_l
                        l1_me[mem_i, midx] = dn_l
                        if sec_l:
                            l1_sec[mem_i, sec_l] = True
                        if prim_l:
                            l2_index[mem_i, prim_l] = prim_rows
                            next_fill[prim_l] = prim_nf
                            fills_pending += len(prim_l)
                    l1_hs[mem_i] = t_port
                    l1_cmp[mem_i] = c
                # LSQ push + dependent-load serialization.
                lsq[:, lu] = c
                lu += 1
                lsq_ub += 1
                if lu >= W:
                    # Physical compaction: a descending sort packs live
                    # entries to the left (order-free — only the live
                    # count and minimum ever matter).  Frozen lanes reset
                    # to empty so their garbage pushes never pin the
                    # cursor at the end of the window.
                    if partial:
                        np.logical_not(active, out=b2)
                        lsq[b2] = -1
                    lsq[:] = np.sort(lsq, axis=1)[:, ::-1]
                    np.greater(lsq, d[:, None], out=stale_buf)
                    lu = int(np.count_nonzero(stale_buf, axis=1).max())
                if has_dep:
                    np_copyto(last_mem_complete, c)
                complete_a[i] = c
                mem_i += 1
            elif has_dep:
                # Compute completions (dispatch + 1) are derived inside the
                # retire flush; only the serialization clock needs them now.
                np_add(d, 1, out=last_compute_complete)

        if flushed < n:
            _flush_retire(flushed, min(n, flushed + B))
        if n_mem_total:
            # hit_end == hit_start + l1_hit_time on every row, and the miss
            # window starts exactly at hit_end (0 on hits) — derived in two
            # vector passes instead of per-instruction stores.
            np.add(l1_hs, h1_arr[None, :], out=l1_he)
            np.multiply(l1_he, l1_miss, out=l1_ms)

        t_loop_end = perf_counter() if profile_phases else 0.0

        # Fold the locally accumulated clocks and counters back into the
        # shared component objects so per-lane statistics match the
        # reference loop exactly.  Port wait and L1 hit/miss counts are
        # derived from the record arrays (one vectorized pass) instead of
        # being accumulated per instruction.
        if not perfect and n_mem_total:
            mem_rows = np.nonzero(trace.is_mem)[0]
            disp_mem = dispatch_a[mem_rows]
            pw_all = (l1_hs - disp_mem).sum(axis=0)
            miss_all = l1_miss.sum(axis=0)
        for lane in range(L):
            sim = lane_sims[lane]
            if not perfect:
                me_l = mem_executed[lane]
                if n_mem_total == 0:
                    pw = nmiss = 0
                elif me_l == n_mem_total:
                    pw = int(pw_all[lane])
                    nmiss = int(miss_all[lane])
                else:
                    pw = int(
                        (l1_hs[:me_l, lane] - disp_mem[:me_l, lane]).sum()
                    )
                    nmiss = int(l1_miss[:me_l, lane].sum())
                sim.l1_ports.grants += me_l
                sim.l1_ports.total_wait += pw
                sim.l1_ports._free_times = sorted(
                    int(v) for v in port_free[lane, : self._n_ports[lane]]
                )
                sim.l1_cache.hits += me_l - nmiss
                sim.l1_cache.misses += nmiss
                sim.l1_cache.evictions += l1evict[lane]
                l1m = sim.l1_mshrs
                l1m._now = l1nowl[lane]
                l1m.primary_misses += l1mprim[lane]
                l1m.secondary_misses += l1msec[lane]
                l1m.full_stall_cycles += l1mstall[lane]
                l1m.peak_occupancy = l1mpeak[lane]
                l2b = sim.l2_banks
                l2b.grants += l2grants[lane]
                l2b.total_wait += l2wait[lane]
                sim.l2_cache.hits += l2hitsn[lane]
                sim.l2_cache.misses += l2missn[lane]
                sim.l2_cache.evictions += l2evictn[lane]
                sim._last_l2_req = lastl2[lane]
                if l2inl[lane]:
                    l2m = sim.l2_mshrs
                    l2m._now = l2nowl[lane]
                    l2m.primary_misses += l2mprim[lane]
                    l2m.secondary_misses += l2msec[lane]
                    l2m.full_stall_cycles += l2mstall[lane]
                    l2m.peak_occupancy = l2mpeakl[lane]
                    if not hasl3[lane]:
                        sim._last_mem_req = lastmem[lane]

        results: "list[SimulationResult]" = []
        for lane in range(L):
            sim = lane_sims[lane]
            stats = {
                "l1_port_mean_wait": sim.l1_ports.mean_wait,
                "l2_bank_mean_wait": sim.l2_banks.mean_wait,
                "l1_mshr_coalescing": sim.l1_mshrs.coalescing_ratio,
                "l1_mshr_peak": sim.l1_mshrs.peak_occupancy,
                "l2_mshr_peak": sim.l2_mshrs.peak_occupancy,
                "dram_row_hit_rate": sim.dram.row_hit_rate,
                "dram_mean_bank_wait": sim.dram.mean_bank_wait,
            }
            if profile_phases:
                stats["phase_issue_loop_s"] = t_loop_end - t_loop_start
                stats["phase_fill_drain_s"] = perf_counter() - t_loop_end
            ex = executed[lane]
            me = mem_executed[lane]
            (r_l2_hs, r_l2_he, r_l2_ms, r_l2_me, r_l2_miss, r_l2_sec,
             r_mem_index, r_mem_s, r_mem_e) = l2_rec[lane]
            results.append(build_simulation_result(
                config=self.configs[lane],
                trace_name=trace.name,
                executed=ex,
                dispatch=dispatch_a[:ex, lane],
                complete=complete_a[:ex, lane],
                retire=retire_a[:ex, lane],
                is_mem=trace.is_mem[:ex],
                l1_hit_start=l1_hs[:me, lane],
                l1_hit_end=l1_he[:me, lane],
                l1_miss_start=l1_ms[:me, lane],
                l1_miss_end=l1_me[:me, lane],
                l1_is_miss=l1_miss[:me, lane],
                l1_is_secondary=l1_sec[:me, lane],
                l1_complete=l1_cmp[:me, lane],
                l2_index=l2_index[:me, lane],
                l2_hit_start=r_l2_hs, l2_hit_end=r_l2_he,
                l2_miss_start=r_l2_ms, l2_miss_end=r_l2_me,
                l2_is_miss=r_l2_miss, l2_is_secondary=r_l2_sec,
                mem_index=r_mem_index, mem_start=r_mem_s, mem_end=r_mem_e,
                component_stats=stats,
                l3_index=sim._l2_l3_index if sim.l3_cache is not None else None,
                l3_records=sim._l3_rec,
            ))
        return results
