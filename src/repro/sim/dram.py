"""Main-memory timing model (DRAMSim2 substitute).

Models the two DRAM properties the LPM analysis is sensitive to:

* **variable access latency** through per-bank row buffers — a request to
  the open row pays CAS only; a closed bank adds RAS-to-CAS; a conflicting
  open row adds a precharge on top; and
* **bank-level parallelism** — requests to distinct banks proceed
  concurrently (feeding the memory layer's concurrency in C-AMAT terms),
  while same-bank requests serialize on the bank's busy window.

Address mapping: ``block -> (bank, row)`` with bank bits taken from the low
block-address bits (spreads sequential lines across banks) and the row from
the bits above, scaled to ``row_bytes``.  The channel adds a fixed ``t_bus``
each way.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.params import DRAMTiming

__all__ = ["DRAMModel", "DRAMAccessResult"]


@dataclass(frozen=True)
class DRAMAccessResult:
    """Timing of one DRAM access.

    ``service_start``/``service_end`` delimit the bank's busy window (the
    memory layer's activity interval for the C-AMAT analyzer);
    ``data_ready`` adds the return bus hop.
    """

    bank: int
    row: int
    kind: str  # "hit" | "closed" | "conflict"
    service_start: int
    service_end: int
    data_ready: int


class DRAMModel:
    """Per-bank open-row state machine with next-free-time scheduling.

    ``access(block, request_time)`` returns the full timing for a read of
    one cache line.  Requests must arrive in non-decreasing ``request_time``
    order (the engine guarantees this).
    """

    def __init__(self, timing: DRAMTiming, line_bytes: int = 64) -> None:
        self.timing = timing
        self._bank_mask = timing.n_banks - 1
        self._bank_bits = timing.n_banks.bit_length() - 1
        blocks_per_row = max(timing.row_bytes // line_bytes, 1)
        self._row_shift = blocks_per_row.bit_length() - 1
        self._open_row: list[int | None] = [None] * timing.n_banks
        self._bank_free = [0] * timing.n_banks
        self.row_hits = 0
        self.row_closed = 0
        self.row_conflicts = 0
        self.total_wait = 0
        self.accesses = 0

    def map_address(self, block: int) -> tuple[int, int]:
        """``block -> (bank, row)`` under the interleaved mapping."""
        bank = block & self._bank_mask
        row = (block >> self._bank_bits) >> self._row_shift
        return bank, row

    def access(self, block: int, request_time: int) -> DRAMAccessResult:
        """Serve a line read; updates row-buffer and bank-busy state."""
        t = self.timing
        bank, row = self.map_address(block)
        arrival = request_time + t.t_bus  # request hop on the channel
        start = max(arrival, self._bank_free[bank])

        open_row = self._open_row[bank]
        if open_row == row:
            kind = "hit"
            latency = t.row_hit_latency
            self.row_hits += 1
        elif open_row is None:
            kind = "closed"
            latency = t.row_closed_latency
            self.row_closed += 1
        else:
            kind = "conflict"
            latency = t.row_conflict_latency
            self.row_conflicts += 1

        service_end = start + latency + t.t_burst
        self._open_row[bank] = row
        self._bank_free[bank] = service_end
        data_ready = service_end + t.t_bus  # reply hop

        self.accesses += 1
        self.total_wait += start - arrival
        return DRAMAccessResult(
            bank=bank,
            row=row,
            kind=kind,
            service_start=start,
            service_end=service_end,
            data_ready=data_ready,
        )

    @property
    def row_hit_rate(self) -> float:
        """Fraction of accesses that hit an open row."""
        return self.row_hits / self.accesses if self.accesses else 0.0

    @property
    def mean_bank_wait(self) -> float:
        """Average cycles spent queueing behind a busy bank."""
        return self.total_wait / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        """Precharge all banks and zero statistics."""
        self._open_row = [None] * self.timing.n_banks
        self._bank_free = [0] * self.timing.n_banks
        self.row_hits = 0
        self.row_closed = 0
        self.row_conflicts = 0
        self.total_wait = 0
        self.accesses = 0
