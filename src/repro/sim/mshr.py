"""Miss Status Holding Registers with primary/secondary miss coalescing.

A non-blocking cache tracks outstanding misses in MSHRs.  The first miss to
a block (the *primary* miss) allocates an MSHR and sends one request to the
next level; later misses to the same block while the fill is outstanding
(*secondary* misses) attach to the existing MSHR and complete when the same
fill returns — no extra downstream traffic.  When all MSHRs are busy the
cache stalls new misses until one frees.

The MSHR count is one of the six Case Study I knobs: it directly bounds
miss-level parallelism and therefore the pure-miss concurrency ``C_M`` the
LPM model optimizes.
"""

from __future__ import annotations

import heapq

from repro.util.validation import check_int

__all__ = ["MSHRFile", "MissLookup"]


class MissLookup:
    """Outcome of presenting a miss to the MSHR file."""

    __slots__ = ("is_secondary", "grant_time", "fill_time")

    def __init__(self, is_secondary: bool, grant_time: int, fill_time: int | None) -> None:
        self.is_secondary = is_secondary
        self.grant_time = grant_time
        #: For secondary misses: the primary's fill time (completion).
        #: For primary misses: None — the caller computes the downstream
        #: path and then calls :meth:`MSHRFile.complete_primary`.
        self.fill_time = fill_time


class MSHRFile:
    """Bounded MSHR file keyed by block address.

    Usage per miss (in non-decreasing arrival order)::

        res = mshrs.present(block, arrival)
        if res.is_secondary:
            done = res.fill_time           # ride the outstanding fill
        else:
            done = <downstream latency from res.grant_time>
            mshrs.complete_primary(block, done)
    """

    def __init__(self, capacity: int, *, in_order: bool = True) -> None:
        check_int("capacity", capacity, minimum=1)
        self.capacity = capacity
        #: In-order files (single requester) clamp arrivals to a
        #: never-rewinding clock, which makes the capacity invariant exact.
        #: Shared files fed by multiple cores with skewed local clocks must
        #: run out-of-order: no clamp, and occupancy is counted against the
        #: presented arrival time instead (conservative: an entry occupies
        #: its register until its fill time, regardless of when it was
        #: allocated).
        self.in_order = in_order
        self._outstanding: dict[int, int] = {}  # block -> fill time
        self._releases: list[tuple[int, int]] = []  # (fill time, block) heap
        self._now = 0  # in-order miss queue: the file's clock never rewinds
        self.primary_misses = 0
        self.secondary_misses = 0
        self.full_stall_cycles = 0
        self.peak_occupancy = 0

    def _expire(self, now: int) -> None:
        while self._releases and self._releases[0][0] <= now:
            _, block = heapq.heappop(self._releases)
            # A block may have been re-allocated; only drop matching entries.
            fill = self._outstanding.get(block)
            if fill is not None and fill <= now:
                del self._outstanding[block]

    def present(self, block: int, arrival: int) -> MissLookup:
        """Present a miss for *block* at *arrival*; coalesce or allocate.

        For a primary miss, the returned ``grant_time`` is the cycle at
        which an MSHR is actually held (>= arrival when the file was full);
        the caller must finish the allocation with :meth:`complete_primary`
        before presenting the next miss.

        Misses are handled in order: a request presented with an arrival
        earlier than the last grant is processed at the file's current
        clock (hardware miss queues do not reorder), which also keeps the
        capacity invariant exact under out-of-order upstream timing.
        """
        if self.in_order:
            arrival = max(arrival, self._now)
            self._expire(arrival)
        fill = self._outstanding.get(block)
        if fill is not None and fill > arrival:
            self.secondary_misses += 1
            return MissLookup(True, arrival, fill)
        grant = arrival
        if self.in_order:
            if len(self._outstanding) >= self.capacity:
                # Stall until the earliest outstanding fill returns.
                earliest_fill, _ = self._releases[0]
                grant = max(arrival, earliest_fill)
                self._expire(grant)
            self._now = grant
        else:
            # Out-of-order: count registers live at this arrival time.
            live = sorted(f for f in self._outstanding.values() if f > arrival)
            if len(live) >= self.capacity:
                grant = live[len(live) - self.capacity]
            self._expire_oo()
        self.primary_misses += 1
        self.full_stall_cycles += grant - arrival
        return MissLookup(False, grant, None)

    def _expire_oo(self) -> None:
        """Bound state growth for out-of-order files.

        Without a global clock we cannot expire by time; instead drop
        heap/dict entries beyond a generous multiple of capacity (oldest
        fills first) — they can no longer influence capacity decisions that
        matter.
        """
        limit = 8 * self.capacity
        while len(self._releases) > limit:
            fill, block = heapq.heappop(self._releases)
            if self._outstanding.get(block) == fill:
                del self._outstanding[block]

    def complete_primary(self, block: int, fill_time: int) -> None:
        """Record the fill time of the primary miss just granted for *block*."""
        if self.in_order and len(self._outstanding) >= self.capacity:
            raise RuntimeError("MSHR file over capacity; present() not honoured")
        self._outstanding[block] = fill_time
        heapq.heappush(self._releases, (fill_time, block))
        occ = len(self._outstanding)
        if occ > self.peak_occupancy:
            self.peak_occupancy = occ

    def outstanding_at(self, cycle: int) -> int:
        """Number of MSHRs held at *cycle* (fills not yet returned)."""
        return sum(1 for f in self._outstanding.values() if f > cycle)

    @property
    def total_misses(self) -> int:
        """Primary plus secondary misses presented so far."""
        return self.primary_misses + self.secondary_misses

    @property
    def coalescing_ratio(self) -> float:
        """Secondary misses per presented miss (0 when none presented)."""
        total = self.total_misses
        return self.secondary_misses / total if total else 0.0

    def reset(self) -> None:
        """Drop all outstanding entries and zero statistics."""
        self._outstanding.clear()
        self._releases.clear()
        self._now = 0
        self.primary_misses = 0
        self.secondary_misses = 0
        self.full_stall_cycles = 0
        self.peak_occupancy = 0
