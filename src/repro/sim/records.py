"""Per-access and per-instruction timing records produced by the engine.

The timing engine emits *intervals*, not aggregates: each memory access's
hit-operation and miss-penalty windows at every layer it touched.  The
C-AMAT analyzer (:mod:`repro.core.analyzer`) then derives C_H, C_M, pMR,
pAMP per layer from these arrays — mirroring the paper's separation between
the HCD/MCD detectors and the model.

All interval columns are half-open ``[start, end)`` int64 arrays; an empty
interval (``start == end == 0``) means "phase absent".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def _empty_int() -> np.ndarray:
    return np.zeros(0, dtype=np.int64)


def _empty_bool() -> np.ndarray:
    return np.zeros(0, dtype=bool)

__all__ = ["AccessRecords", "InstructionRecords"]


@dataclass
class AccessRecords:
    """Timing of every memory access through the hierarchy.

    L1 columns have one row per memory instruction.  L2 columns have one
    row per *primary* L1 miss (coalesced secondary misses ride the primary
    fill and create no L2 traffic).  When the machine has no L3, memory
    columns have one row per L2 primary miss, referenced by ``mem_index``
    on the L2 rows.  With an L3 configured, L3 columns have one row per L2
    primary miss (``l3_index``), and memory rows hang off the L3 rows via
    ``l3_mem_index``.  All index columns hold -1 where absent.
    """

    # L1 layer (one row per access)
    l1_hit_start: np.ndarray
    l1_hit_end: np.ndarray
    l1_miss_start: np.ndarray
    l1_miss_end: np.ndarray
    l1_is_miss: np.ndarray          # bool: functional L1 miss (incl. secondary)
    l1_is_secondary: np.ndarray     # bool: coalesced into an outstanding MSHR
    complete: np.ndarray            # data-ready cycle per access
    l2_index: np.ndarray            # int: row in the L2 columns, -1 if none

    # L2 layer (one row per primary L1 miss)
    l2_hit_start: np.ndarray
    l2_hit_end: np.ndarray
    l2_miss_start: np.ndarray
    l2_miss_end: np.ndarray
    l2_is_miss: np.ndarray
    l2_is_secondary: np.ndarray
    mem_index: np.ndarray           # int: row in the memory columns, -1 if none

    # Main-memory layer (one row per last-level-cache miss)
    mem_start: np.ndarray
    mem_end: np.ndarray

    # Optional L3 layer (one row per L2 primary miss when configured).
    l3_index: np.ndarray = field(default_factory=_empty_int)      # on L2 rows
    l3_hit_start: np.ndarray = field(default_factory=_empty_int)
    l3_hit_end: np.ndarray = field(default_factory=_empty_int)
    l3_miss_start: np.ndarray = field(default_factory=_empty_int)
    l3_miss_end: np.ndarray = field(default_factory=_empty_int)
    l3_is_miss: np.ndarray = field(default_factory=_empty_bool)
    l3_is_secondary: np.ndarray = field(default_factory=_empty_bool)
    l3_mem_index: np.ndarray = field(default_factory=_empty_int)  # on L3 rows

    def __post_init__(self) -> None:
        n1 = self.l1_hit_start.shape[0]
        for name in ("l1_hit_end", "l1_miss_start", "l1_miss_end", "l1_is_miss",
                     "l1_is_secondary", "complete", "l2_index"):
            if getattr(self, name).shape[0] != n1:
                raise ValueError(f"{name} must have {n1} rows")
        n2 = self.l2_hit_start.shape[0]
        for name in ("l2_hit_end", "l2_miss_start", "l2_miss_end", "l2_is_miss",
                     "l2_is_secondary", "mem_index"):
            if getattr(self, name).shape[0] != n2:
                raise ValueError(f"{name} must have {n2} rows")
        if self.mem_start.shape[0] != self.mem_end.shape[0]:
            raise ValueError("mem_start and mem_end must have equal length")
        if self.l3_index.shape[0] not in (0, n2):
            raise ValueError("l3_index must be empty or have one entry per L2 row")
        n3 = self.l3_hit_start.shape[0]
        for name in ("l3_hit_end", "l3_miss_start", "l3_miss_end", "l3_is_miss",
                     "l3_is_secondary", "l3_mem_index"):
            if getattr(self, name).shape[0] != n3:
                raise ValueError(f"{name} must have {n3} rows")

    @property
    def n_accesses(self) -> int:
        """Number of L1 accesses (memory instructions)."""
        return int(self.l1_hit_start.shape[0])

    @property
    def n_l2_accesses(self) -> int:
        """Number of L2 accesses (primary L1 misses)."""
        return int(self.l2_hit_start.shape[0])

    @property
    def n_mem_accesses(self) -> int:
        """Number of main-memory accesses (L2 misses)."""
        return int(self.mem_start.shape[0])

    @property
    def l1_miss_count(self) -> int:
        """All functional L1 misses, secondary included."""
        return int(np.count_nonzero(self.l1_is_miss))

    @property
    def l1_miss_rate(self) -> float:
        """Conventional MR1 (misses over accesses)."""
        n = self.n_accesses
        return self.l1_miss_count / n if n else 0.0

    @property
    def l2_per_l1_access(self) -> float:
        """L2 request rate per L1 access — the request-rate MR1 after coalescing."""
        n = self.n_accesses
        return self.n_l2_accesses / n if n else 0.0

    @property
    def l2_miss_rate(self) -> float:
        """Conventional MR2 at the L2 (misses over L2 accesses)."""
        n = self.n_l2_accesses
        return int(np.count_nonzero(self.l2_is_miss)) / n if n else 0.0

    @property
    def mem_per_l2_access(self) -> float:
        """Memory request rate per L2 access (after L2 MSHR coalescing).

        With an L3 configured this is zero (memory traffic hangs off L3).
        """
        n = self.n_l2_accesses
        return self.n_mem_accesses / n if n and not self.has_l3 else 0.0

    # -- optional L3 layer -------------------------------------------------
    @property
    def has_l3(self) -> bool:
        """Whether this run had a third cache level configured."""
        return self.l3_index.shape[0] > 0 or self.l3_hit_start.shape[0] > 0

    @property
    def n_l3_accesses(self) -> int:
        """Number of L3 accesses (L2 primary misses) when L3 is present."""
        return int(self.l3_hit_start.shape[0])

    @property
    def l3_per_l2_access(self) -> float:
        """L3 request rate per L2 access."""
        n = self.n_l2_accesses
        return self.n_l3_accesses / n if n else 0.0

    @property
    def l3_miss_rate(self) -> float:
        """Conventional miss rate at the L3."""
        n = self.n_l3_accesses
        return int(np.count_nonzero(self.l3_is_miss)) / n if n else 0.0

    @property
    def mem_per_l3_access(self) -> float:
        """Memory request rate per L3 access (after L3 MSHR coalescing)."""
        n = self.n_l3_accesses
        return self.n_mem_accesses / n if n else 0.0


@dataclass
class InstructionRecords:
    """Pipeline timing of every instruction (memory and compute)."""

    dispatch: np.ndarray   # dispatch (issue) cycle per instruction
    complete: np.ndarray   # execution/data-ready cycle
    retire: np.ndarray     # in-order retire cycle
    is_mem: np.ndarray     # bool

    def __post_init__(self) -> None:
        n = self.dispatch.shape[0]
        for name in ("complete", "retire", "is_mem"):
            if getattr(self, name).shape[0] != n:
                raise ValueError(f"{name} must have {n} rows")

    @property
    def n_instructions(self) -> int:
        """Instruction count."""
        return int(self.dispatch.shape[0])

    @property
    def total_cycles(self) -> int:
        """End-to-end execution time in cycles (first dispatch to last retire)."""
        if self.n_instructions == 0:
            return 0
        return int(self.retire.max() - self.dispatch.min())

    @property
    def cpi(self) -> float:
        """Cycles per instruction over the whole run."""
        n = self.n_instructions
        return self.total_cycles / n if n else 0.0
