"""Cycle-level memory-hierarchy simulator (the GEM5/DRAMSim2 substitute)."""

from repro.sim.cache import FunctionalCache
from repro.sim.dram import DRAMAccessResult, DRAMModel
from repro.sim.engine import HierarchySimulator, SimulationResult
from repro.sim.mshr import MissLookup, MSHRFile
from repro.sim.multicore import CoRunResult, MulticoreSimulator
from repro.sim.params import (
    DEFAULT_MACHINE,
    TABLE1_CONFIGS,
    CacheGeometry,
    CoreParams,
    DRAMTiming,
    MachineConfig,
    table1_config,
)
from repro.sim.ports import BankScheduler, PortScheduler, SlotPool
from repro.sim.prefetch import BypassConfig, PrefetchConfig, StreamDetector, StridePrefetcher
from repro.sim.records import AccessRecords, InstructionRecords
from repro.sim.stats import HierarchyStats, measure_hierarchy, simulate_and_measure

__all__ = [
    "AccessRecords",
    "BankScheduler",
    "CacheGeometry",
    "CoreParams",
    "DEFAULT_MACHINE",
    "DRAMAccessResult",
    "DRAMModel",
    "DRAMTiming",
    "FunctionalCache",
    "HierarchySimulator",
    "HierarchyStats",
    "InstructionRecords",
    "MSHRFile",
    "CoRunResult",
    "MachineConfig",
    "MissLookup",
    "MulticoreSimulator",
    "PortScheduler",
    "BypassConfig",
    "PrefetchConfig",
    "StreamDetector",
    "StridePrefetcher",
    "SimulationResult",
    "SlotPool",
    "TABLE1_CONFIGS",
    "measure_hierarchy",
    "simulate_and_measure",
    "table1_config",
]
