"""Event-driven resource schedulers: ports, banks, bounded slots.

Following the optimization guidance for this codebase (avoid O(cycles)
loops), contention is modelled with *next-free-time* bookkeeping instead of
cycle stepping: a request asks a resource for the earliest grant time at or
after its arrival, and the resource advances its free time by the request's
occupancy.  Cost is O(log k) per request for a k-way resource.

Grant times are non-decreasing provided arrival times are fed in
non-decreasing order — which the engine guarantees by processing accesses
in dispatch order — so downstream consumers may rely on monotonic grants.
"""

from __future__ import annotations

import heapq

from repro.util.validation import check_int

__all__ = ["PortScheduler", "BankScheduler", "SlotPool"]


class PortScheduler:
    """``n_ports`` identical ports, each serially occupied per grant.

    A pipelined cache occupies a port for 1 cycle per access; a
    non-pipelined one for the full hit time — the caller passes the
    occupancy per request.
    """

    def __init__(self, n_ports: int) -> None:
        check_int("n_ports", n_ports, minimum=1)
        self.n_ports = n_ports
        self._free_times = [0] * n_ports  # min-heap of next-free times
        self.grants = 0
        self.total_wait = 0

    def acquire(self, arrival: int, occupancy: int) -> int:
        """Grant a port at or after *arrival*; returns the grant cycle."""
        if occupancy < 1:
            raise ValueError(f"occupancy must be >= 1, got {occupancy}")
        earliest = self._free_times[0]
        grant = arrival if arrival >= earliest else earliest
        heapq.heapreplace(self._free_times, grant + occupancy)
        self.grants += 1
        self.total_wait += grant - arrival
        return grant

    @property
    def mean_wait(self) -> float:
        """Average cycles requests waited for a port."""
        return self.total_wait / self.grants if self.grants else 0.0

    def reset(self) -> None:
        """Release all ports and zero statistics."""
        self._free_times = [0] * self.n_ports
        self.grants = 0
        self.total_wait = 0


class BankScheduler:
    """``n_banks`` address-interleaved banks (L2 interleaving knob).

    Bank selection is by low-order block-address bits.  Each bank serves
    one request at a time for the request's occupancy.
    """

    def __init__(self, n_banks: int) -> None:
        check_int("n_banks", n_banks, minimum=1)
        if n_banks & (n_banks - 1):
            raise ValueError(f"n_banks must be a power of two, got {n_banks}")
        self.n_banks = n_banks
        self._mask = n_banks - 1
        self._free_times = [0] * n_banks
        self.grants = 0
        self.total_wait = 0

    def bank_of(self, block: int) -> int:
        """Bank index serving *block*."""
        return block & self._mask

    def acquire(self, block: int, arrival: int, occupancy: int) -> int:
        """Grant the block's bank at or after *arrival*; returns the grant cycle."""
        if occupancy < 1:
            raise ValueError(f"occupancy must be >= 1, got {occupancy}")
        bank = block & self._mask
        free = self._free_times[bank]
        grant = arrival if arrival >= free else free
        self._free_times[bank] = grant + occupancy
        self.grants += 1
        self.total_wait += grant - arrival
        return grant

    @property
    def mean_wait(self) -> float:
        """Average cycles requests waited for their bank."""
        return self.total_wait / self.grants if self.grants else 0.0

    def reset(self) -> None:
        """Release all banks and zero statistics."""
        self._free_times = [0] * self.n_banks
        self.grants = 0
        self.total_wait = 0


class SlotPool:
    """A pool of ``capacity`` slots held for externally computed durations.

    Models bounded structures whose release time is known when the entry is
    created (MSHRs, load/store-queue entries): ``admit`` returns the cycle
    at which a slot becomes available (>= arrival), and the caller then
    ``hold``\\ s the slot until its release cycle.
    """

    def __init__(self, capacity: int) -> None:
        check_int("capacity", capacity, minimum=1)
        self.capacity = capacity
        self._releases: list[int] = []  # min-heap of release times
        self.admissions = 0
        self.total_wait = 0
        self.peak_occupancy = 0

    def admit(self, arrival: int) -> int:
        """Earliest cycle >= *arrival* at which a slot is free."""
        while self._releases and self._releases[0] <= arrival:
            heapq.heappop(self._releases)
        if len(self._releases) < self.capacity:
            grant = arrival
        else:
            earliest = heapq.heappop(self._releases)
            grant = earliest if earliest > arrival else arrival
        self.admissions += 1
        self.total_wait += grant - arrival
        return grant

    def hold(self, release: int) -> None:
        """Occupy the slot granted by the last :meth:`admit` until *release*."""
        heapq.heappush(self._releases, release)
        occ = len(self._releases)
        if occ > self.peak_occupancy:
            self.peak_occupancy = occ
        if occ > self.capacity:
            raise RuntimeError(
                f"slot pool over capacity: {occ} > {self.capacity} "
                "(hold() without matching admit()?)"
            )

    def occupancy_at(self, cycle: int) -> int:
        """Slots still held at *cycle* (entries with release > cycle)."""
        return sum(1 for r in self._releases if r > cycle)

    @property
    def mean_wait(self) -> float:
        """Average admission wait in cycles."""
        return self.total_wait / self.admissions if self.admissions else 0.0

    def reset(self) -> None:
        """Release everything and zero statistics."""
        self._releases.clear()
        self.admissions = 0
        self.total_wait = 0
        self.peak_occupancy = 0
