"""Trace-driven out-of-order CPU + two-level non-blocking cache timing engine.

This is the GEM5 substitute (see DESIGN.md): a single forward pass over the
instruction trace computes, for every instruction, its dispatch, completion
and in-order retire cycles, and for every memory access its hit/miss
activity intervals at L1, L2 and main memory.  All resource contention
(issue/retire bandwidth, ROB occupancy, load/store-window slots, L1 ports,
L1/L2 MSHRs, L2 banks, DRAM banks) is modelled event-driven with
next-free-time schedulers — cost is O(instructions), never O(cycles).

Model structure per memory access::

    dispatch --(port grant)--> L1 hit-op [t, t+H1)
        hit  -> data at t+H1
        miss -> MSHR (coalesce or allocate, stall while full)
                --> L2 bank grant --> L2 hit-op [b, b+H2)
                    hit  -> data back to L1
                    miss -> L2 MSHR --> DRAM bank (row-buffer state machine)
                            --> fill L2 --> fill L1 --> data

Functional cache contents are updated lazily: fills are queued with their
arrival cycle and applied before any later lookup, so hit/miss outcomes are
consistent with the timing the engine itself computed.  Miss-queue grants
are clamped monotonic (in-order miss handling), which both matches simple
hardware and keeps the lazy-fill bookkeeping correct.

The engine deliberately emits *intervals* rather than aggregated statistics;
the C-AMAT analyzer (:mod:`repro.core.analyzer`) is the single source of
truth for C_H/C_M/pMR/pAMP at every layer.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.profile import profiling_enabled
from repro.sim.cache import FunctionalCache
from repro.sim.dram import DRAMModel
from repro.sim.mshr import MSHRFile
from repro.runtime.errors import ConfigError
from repro.sim.params import MachineConfig
from repro.sim.ports import BankScheduler, PortScheduler
from repro.sim.prefetch import (
    BypassConfig,
    PrefetchConfig,
    StreamDetector,
    StridePrefetcher,
)
from repro.sim.records import AccessRecords, InstructionRecords
from repro.util.validation import check_int
from repro.workloads.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.batch import BatchHierarchySimulator

__all__ = ["ENGINE_VERSION", "HierarchySimulator", "SimulationResult"]

#: Engine-family version.  Bump whenever a change alters simulated timing or
#: any measured statistic, *and* whenever a new issue-loop implementation
#: starts feeding the persistent evaluation cache
#: (:mod:`repro.runtime.evalcache`) — even a bit-identical one.  Cached
#: measurements are keyed on this number, so versioning by implementation
#: generation means a latent kernel defect can be purged from the cache by
#: version alone, without auditing which engine produced which entry.
#: v2: the vectorized batch engine (:mod:`repro.sim.batch`) joined the
#: fast/reference pair.
ENGINE_VERSION = 2


@dataclass
class SimulationResult:
    """Everything one simulation run produced."""

    config: MachineConfig
    trace_name: str
    accesses: AccessRecords
    instructions: InstructionRecords
    component_stats: dict = field(default_factory=dict)
    #: Instructions actually executed; smaller than the trace length only
    #: when a ``stop_cycle`` bound cut the quantum short.
    instructions_executed: int = 0

    @property
    def total_cycles(self) -> int:
        """End-to-end execution time in cycles."""
        return self.instructions.total_cycles

    @property
    def cpi(self) -> float:
        """Cycles per instruction of the run."""
        return self.instructions.cpi

    @property
    def ipc(self) -> float:
        """Instructions per cycle of the run."""
        cpi = self.cpi
        return 1.0 / cpi if cpi else 0.0


def build_simulation_result(
    *,
    config: MachineConfig,
    trace_name: str,
    executed: int,
    dispatch,
    complete,
    retire,
    is_mem,
    l1_hit_start,
    l1_hit_end,
    l1_miss_start,
    l1_miss_end,
    l1_is_miss,
    l1_is_secondary,
    l1_complete,
    l2_index,
    l2_hit_start,
    l2_hit_end,
    l2_miss_start,
    l2_miss_end,
    l2_is_miss,
    l2_is_secondary,
    mem_index,
    mem_start,
    mem_end,
    component_stats: dict,
    l3_index=None,
    l3_records=None,
) -> SimulationResult:
    """Coerce one engine run's raw record columns into a result.

    Every issue-loop implementation — reference, fast, and the vectorized
    batch kernel (:mod:`repro.sim.batch`) — finishes here, so column dtypes
    and the derived quantities (``total_cycles``/``cpi``/``ipc``, which the
    record classes compute from these arrays) cannot drift between engines:
    one coercion, one validation path, one set of formulas.

    *l3_records* is the 7-tuple of L3 record columns (hit/miss intervals,
    miss/secondary flags, memory cross-reference) collected by the reference
    loop when a third level is configured; ``None`` means "no L3".
    """
    if l3_records is None:
        l3_records = ((), (), (), (), (), (), ())
    accesses = AccessRecords(
        l1_hit_start=np.asarray(l1_hit_start, dtype=np.int64),
        l1_hit_end=np.asarray(l1_hit_end, dtype=np.int64),
        l1_miss_start=np.asarray(l1_miss_start, dtype=np.int64),
        l1_miss_end=np.asarray(l1_miss_end, dtype=np.int64),
        l1_is_miss=np.asarray(l1_is_miss, dtype=bool),
        l1_is_secondary=np.asarray(l1_is_secondary, dtype=bool),
        complete=np.asarray(l1_complete, dtype=np.int64),
        l2_index=np.asarray(l2_index, dtype=np.int64),
        l2_hit_start=np.asarray(l2_hit_start, dtype=np.int64),
        l2_hit_end=np.asarray(l2_hit_end, dtype=np.int64),
        l2_miss_start=np.asarray(l2_miss_start, dtype=np.int64),
        l2_miss_end=np.asarray(l2_miss_end, dtype=np.int64),
        l2_is_miss=np.asarray(l2_is_miss, dtype=bool),
        l2_is_secondary=np.asarray(l2_is_secondary, dtype=bool),
        mem_index=np.asarray(mem_index, dtype=np.int64),
        mem_start=np.asarray(mem_start, dtype=np.int64),
        mem_end=np.asarray(mem_end, dtype=np.int64),
        l3_index=np.asarray(
            l3_index if l3_index is not None else (), dtype=np.int64
        ),
        l3_hit_start=np.asarray(l3_records[0], dtype=np.int64),
        l3_hit_end=np.asarray(l3_records[1], dtype=np.int64),
        l3_miss_start=np.asarray(l3_records[2], dtype=np.int64),
        l3_miss_end=np.asarray(l3_records[3], dtype=np.int64),
        l3_is_miss=np.asarray(l3_records[4], dtype=bool),
        l3_is_secondary=np.asarray(l3_records[5], dtype=bool),
        l3_mem_index=np.asarray(l3_records[6], dtype=np.int64),
    )
    instructions = InstructionRecords(
        dispatch=np.asarray(dispatch, dtype=np.int64),
        complete=np.asarray(complete, dtype=np.int64),
        retire=np.asarray(retire, dtype=np.int64),
        is_mem=np.array(is_mem, dtype=bool),
    )
    return SimulationResult(
        config=config,
        trace_name=trace_name,
        accesses=accesses,
        instructions=instructions,
        component_stats=component_stats,
        instructions_executed=executed,
    )


class _FillQueue:
    """Pending cache fills applied lazily in arrival order."""

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: list[tuple[int, int]] = []  # (arrival cycle, address)

    def schedule(self, arrival: int, address: int) -> None:
        heapq.heappush(self._heap, (arrival, address))

    def apply_until(self, cache: FunctionalCache, now: int) -> None:
        heap = self._heap
        while heap and heap[0][0] <= now:
            _, address = heapq.heappop(heap)
            cache.insert(address)


class HierarchySimulator:
    """Simulate a :class:`Trace` on a :class:`MachineConfig`.

    A simulator instance carries warm state (cache contents, DRAM row
    buffers) across :meth:`run` calls; construct a fresh instance or call
    :meth:`reset` for independent experiments.
    """

    def __init__(
        self, config: MachineConfig, *, seed: int = 0, engine: str = "auto"
    ) -> None:
        if engine not in ("auto", "fast", "reference", "batch"):
            raise ConfigError(
                "engine must be 'auto', 'fast', 'reference' or 'batch', "
                f"got {engine!r}"
            )
        self.config = config
        self.seed = seed
        #: Issue-loop selection: ``auto`` takes the specialized fast loop
        #: whenever the configuration is eligible, ``reference`` always runs
        #: the obviously-correct loop, ``fast`` demands the fast loop and
        #: raises when the configuration cannot use it, ``batch`` routes
        #: through the vectorized batch kernel (:mod:`repro.sim.batch`) as
        #: a single-lane batch and raises eagerly on ineligible configs.
        self.engine = engine
        self.reset()
        if engine == "fast":
            self._use_fast_path()  # raises eagerly on ineligible configs

    def reset(self) -> None:
        """Recreate all functional and timing state."""
        cfg = self.config
        self.l1_cache = FunctionalCache(cfg.l1, seed=self.seed)
        self.l2_cache = FunctionalCache(cfg.l2, seed=self.seed + 1)
        self.l1_ports = PortScheduler(cfg.l1_ports)
        self.l2_banks = BankScheduler(cfg.l2_banks)
        self.l1_mshrs = MSHRFile(cfg.mshr_count)
        self.l2_mshrs = MSHRFile(cfg.l2_mshr_count)
        self.dram = DRAMModel(cfg.dram, line_bytes=cfg.l1.line_bytes)
        # Hot-loop constant: CacheGeometry.offset_bits is a computed
        # property; cache it once (profiled ~2% of run time otherwise).
        self._offset_bits = cfg.l1.offset_bits
        # Saved pipeline state for run(resume=True) continuations.
        self._pipe: dict | None = None
        self._l1_fills = _FillQueue()
        self._l2_fills = _FillQueue()
        self._last_l2_req = 0
        self._last_mem_req = 0
        self.l3_cache: FunctionalCache | None = None
        if cfg.l3 is not None:
            self.l3_cache = FunctionalCache(cfg.l3, seed=self.seed + 2)
            self.l3_banks = BankScheduler(cfg.l3_banks)
            self.l3_mshrs = MSHRFile(cfg.l3_mshr_count)
            self._l3_fills = _FillQueue()
            self._last_l3_req = 0
        # Per-run record lists for the optional L3 (populated by _access_l3)
        # and the per-L2-row L3 index column.
        self._l3_rec: tuple[list, ...] = tuple([] for _ in range(7))
        self._l2_l3_index: list[int] = []
        self.prefetcher: StridePrefetcher | None = None
        if cfg.prefetch is not None:
            if not isinstance(cfg.prefetch, PrefetchConfig):
                raise TypeError(
                    "MachineConfig.prefetch must be a PrefetchConfig or None, "
                    f"got {type(cfg.prefetch).__name__}"
                )
            self.prefetcher = StridePrefetcher(cfg.prefetch, cfg.l1.line_bytes)
        # block -> fill-arrival cycle of prefetches not yet consumed by a
        # demand access (usefulness / lateness attribution).
        self._prefetch_fills: dict[int, int] = {}
        self.bypass: StreamDetector | None = None
        if cfg.l1_bypass is not None:
            if not isinstance(cfg.l1_bypass, BypassConfig):
                raise TypeError(
                    "MachineConfig.l1_bypass must be a BypassConfig or None, "
                    f"got {type(cfg.l1_bypass).__name__}"
                )
            self.bypass = StreamDetector(cfg.l1_bypass, cfg.l1.line_bytes)
        # Single-lane delegate for engine="batch"; its constructor raises
        # ConfigError eagerly when the config is ineligible for batching.
        self._batch: "BatchHierarchySimulator | None" = None
        if self.engine == "batch":
            from repro.sim.batch import BatchHierarchySimulator

            self._batch = BatchHierarchySimulator([cfg], seed=self.seed)

    def warm_caches(self, trace: Trace) -> None:
        """Touch the trace's addresses functionally (no timing, no stats).

        Used to measure steady-state behaviour without cold-start misses.
        """
        if self._batch is not None:
            self._batch.warm_caches(trace)
            return
        addresses = trace.memory_addresses
        caches = [self.l1_cache, self.l2_cache]
        if self.l3_cache is not None:
            caches.append(self.l3_cache)
        for cache in caches:
            cache.warm_lookup_array(addresses)

    # ------------------------------------------------------------------
    def reconfigure(self, config: MachineConfig) -> None:
        """Switch to *config* at an interval boundary, keeping cache contents.

        Models runtime reconfiguration (Case Study I's substrate): SRAM
        contents, DRAM row-buffer state and all resource timing survive;
        the port/bank schedulers and MSHR capacities are re-provisioned.
        Cache *geometries* must be unchanged (the Table I knobs never
        resize the caches).  In-flight timing at the boundary is carried by
        the next :meth:`run` call's ``start_cycle``.
        """
        if self._batch is not None:
            raise ConfigError(
                "engine='batch' does not support reconfigure(); use the "
                "auto/fast/reference engines for online reconfiguration"
            )
        if config.l1 != self.config.l1 or config.l2 != self.config.l2:
            raise ConfigError("reconfigure() cannot change cache geometry")
        old = self.config
        self.config = config
        if config.l1_ports != old.l1_ports:
            self.l1_ports = PortScheduler(config.l1_ports)
        if config.l2_banks != old.l2_banks:
            self.l2_banks = BankScheduler(config.l2_banks)
        # MSHR files keep their outstanding entries; capacity changes take
        # effect on the next allocation (shrinking drains naturally because
        # present() stalls while occupancy >= capacity).
        self.l1_mshrs.capacity = config.mshr_count
        self.l2_mshrs.capacity = config.l2_mshr_count

    def run(
        self,
        trace: Trace,
        *,
        perfect: bool = False,
        start_cycle: int = 0,
        stop_cycle: "int | None" = None,
        resume: bool = False,
    ) -> SimulationResult:
        """Execute *trace*; returns records for analysis.

        ``start_cycle`` continues a timeline begun by earlier :meth:`run`
        calls on the same simulator (used by the online controller to
        execute a trace in measurement intervals with reconfigurations in
        between); resource next-free times, pending fills and cache
        contents all carry over.

        ``stop_cycle`` bounds the quantum in *time*: dispatch stops at the
        first instruction whose dispatch cycle would reach it, and the
        result's ``instructions_executed`` tells the caller how far the
        trace was consumed (the multicore coordinator uses this to keep
        co-running cores' clocks aligned).  In-flight completions may
        extend past ``stop_cycle``.

        ``perfect=True`` forces every L1 access to hit in the flat hit time
        with no port contention (the paper's "perfect cache" used to
        measure ``CPI_exe``): CPI_exe must reflect pure compute capability
        — issue width, ILP chains, ROB — so that the LPMR request rate
        ``IPC_exe * f_mem`` expresses true demand.  If L1 bandwidth limits
        were included here they would cancel out of the matching ratios.

        With observability enabled (``repro.obs``), the run is wrapped in
        a ``sim.run`` span and per-layer access/hit/miss/MSHR-stall
        counters are recorded from the finished record arrays — the
        per-instruction loop itself is never instrumented, so the disabled
        fast path costs two boolean checks per run.
        """
        if self._batch is not None:
            impl = self._run_impl_batch
        elif self._use_fast_path():
            impl = self._run_impl_fast
        else:
            impl = self._run_impl
        if not (obs_trace.tracing_enabled() or obs_metrics.metrics_enabled()):
            return impl(
                trace, perfect=perfect, start_cycle=start_cycle,
                stop_cycle=stop_cycle, resume=resume,
            )
        with obs_trace.span(
            "sim.run", trace=trace.name, config=self.config.name, perfect=perfect,
        ) as span:
            stall_before = (
                self.l1_mshrs.full_stall_cycles, self.l2_mshrs.full_stall_cycles,
            )
            result = impl(
                trace, perfect=perfect, start_cycle=start_cycle,
                stop_cycle=stop_cycle, resume=resume,
            )
            span.set(
                instructions=result.instructions_executed,
                cycles=result.total_cycles,
                cpi=result.cpi,
            )
            if obs_metrics.metrics_enabled():
                self._record_metrics(result, stall_before)
        return result

    def _record_metrics(
        self, result: SimulationResult, stall_before: "tuple[int, int]"
    ) -> None:
        """Fold one finished run into the global metrics registry.

        All counts come from the already-materialized record arrays
        (vectorized ``count_nonzero``), so this costs O(accesses) numpy
        work once per run — nothing is added to the issue loop.
        """
        reg = obs_metrics.get_registry()
        acc = result.accesses
        reg.counter("sim.runs").inc()
        reg.counter("sim.instructions").inc(result.instructions_executed)
        reg.counter("sim.cycles").inc(result.total_cycles)

        n_l1 = acc.n_accesses
        l1_miss = int(np.count_nonzero(acc.l1_is_miss))
        reg.counter("sim.l1.accesses").inc(n_l1)
        reg.counter("sim.l1.hits").inc(n_l1 - l1_miss)
        reg.counter("sim.l1.misses").inc(l1_miss)
        reg.counter("sim.l1.secondary_misses").inc(
            int(np.count_nonzero(acc.l1_is_secondary))
        )
        reg.counter("sim.l1.mshr_stall_cycles").inc(
            max(self.l1_mshrs.full_stall_cycles - stall_before[0], 0)
        )
        reg.gauge("sim.l1.mshr_peak").set_max(self.l1_mshrs.peak_occupancy)

        n_l2 = len(acc.l2_hit_start)
        l2_miss = int(np.count_nonzero(acc.l2_is_miss))
        reg.counter("sim.l2.accesses").inc(n_l2)
        reg.counter("sim.l2.hits").inc(n_l2 - l2_miss)
        reg.counter("sim.l2.misses").inc(l2_miss)
        reg.counter("sim.l2.secondary_misses").inc(
            int(np.count_nonzero(acc.l2_is_secondary))
        )
        reg.counter("sim.l2.mshr_stall_cycles").inc(
            max(self.l2_mshrs.full_stall_cycles - stall_before[1], 0)
        )
        reg.gauge("sim.l2.mshr_peak").set_max(self.l2_mshrs.peak_occupancy)

        if acc.has_l3:
            n_l3 = len(acc.l3_hit_start)
            l3_miss = int(np.count_nonzero(acc.l3_is_miss))
            reg.counter("sim.l3.accesses").inc(n_l3)
            reg.counter("sim.l3.hits").inc(n_l3 - l3_miss)
            reg.counter("sim.l3.misses").inc(l3_miss)
        reg.counter("sim.mem.accesses").inc(len(acc.mem_start))

    def _run_impl_batch(
        self,
        trace: Trace,
        *,
        perfect: bool = False,
        start_cycle: int = 0,
        stop_cycle: "int | None" = None,
        resume: bool = False,
    ) -> SimulationResult:
        """Route one run through the vectorized kernel as a 1-lane batch."""
        batch = self._batch
        if batch is None:  # pragma: no cover - run() dispatches here only then
            raise ConfigError("batch delegate not initialised")
        if resume:
            raise ConfigError(
                "engine='batch' does not support resume=True; use the "
                "auto/fast/reference engines for quantum continuation"
            )
        return batch.run(
            trace, perfect=perfect, start_cycle=start_cycle,
            stop_cycle=stop_cycle,
        )[0]

    def _run_impl(
        self,
        trace: Trace,
        *,
        perfect: bool,
        start_cycle: int,
        stop_cycle: "int | None",
        resume: bool,
    ) -> SimulationResult:
        cfg = self.config
        n = trace.n_instructions
        check_int("n_instructions", n, minimum=0)
        is_mem = trace.is_mem
        address = trace.address
        depends = trace.depends

        issue_w = cfg.core.issue_width
        rob = cfg.core.rob_size
        iw = cfg.core.iw_size
        h1 = cfg.l1_hit_time

        dispatch = np.zeros(n, dtype=np.int64)
        complete = np.zeros(n, dtype=np.int64)
        retire = np.zeros(n, dtype=np.int64)

        n_mem_total = trace.n_mem
        l1_hs = np.zeros(n_mem_total, dtype=np.int64)
        l1_he = np.zeros(n_mem_total, dtype=np.int64)
        l1_ms = np.zeros(n_mem_total, dtype=np.int64)
        l1_me = np.zeros(n_mem_total, dtype=np.int64)
        l1_miss = np.zeros(n_mem_total, dtype=bool)
        l1_sec = np.zeros(n_mem_total, dtype=bool)
        l1_complete = np.zeros(n_mem_total, dtype=np.int64)
        l2_index = np.full(n_mem_total, -1, dtype=np.int64)

        l2_hs: list[int] = []
        l2_he: list[int] = []
        l2_ms: list[int] = []
        l2_me: list[int] = []
        l2_miss: list[bool] = []
        l2_sec: list[bool] = []
        mem_index: list[int] = []
        mem_s: list[int] = []
        mem_e: list[int] = []
        # Fresh per-run L3 record lists (continuation runs accumulate into
        # their own records; the analyzer treats each run independently).
        self._l3_rec = tuple([] for _ in range(7))
        self._l2_l3_index = []

        # Issue/retire bandwidth tracking — either fresh from start_cycle
        # or resumed from the previous quantum's saved pipeline state
        # (multicore windows; avoids a full pipeline drain per window).
        check_int("start_cycle", start_cycle, minimum=0)
        if resume and self._pipe is not None:
            pipe = self._pipe
            disp_cycle = max(pipe["disp_cycle"], start_cycle)
            disp_count = pipe["disp_count"] if disp_cycle == pipe["disp_cycle"] else 0
            ret_cycle = max(pipe["ret_cycle"], start_cycle - 1)
            ret_count = pipe["ret_count"] if ret_cycle == pipe["ret_cycle"] else 0
            last_mem_complete = pipe["last_mem_complete"]
            last_compute_complete = pipe["last_compute_complete"]
            lsq = pipe["lsq"]
            recent_retires: list[int] = pipe["recent_retires"][-rob:]
        else:
            disp_cycle = start_cycle
            disp_count = 0
            ret_cycle = start_cycle - 1
            ret_count = 0
            last_mem_complete = start_cycle      # dependent-load serialization
            last_compute_complete = start_cycle  # compute ILP dependency chains
            lsq = []  # completion-time heap of in-flight memory ops
            recent_retires = []  # retire times of the last `rob` instructions

        mem_i = 0  # memory-access row index
        memory_access = self._memory_access  # local binding for the hot loop

        # Opt-in phase timing (repro.obs.profile): two clock reads per run,
        # and only while a profile is being taken.
        profile_phases = profiling_enabled()
        t_loop_start = perf_counter() if profile_phases else 0.0

        executed = n
        for i in range(n):
            # --- dispatch: bandwidth + ROB + (for memory) window slots ----
            d = disp_cycle
            if disp_count >= issue_w:
                d += 1
            if len(recent_retires) >= rob:
                rr = recent_retires[-rob]
                if rr > d:
                    d = rr
            mem_op = bool(is_mem[i])
            popped = None
            if mem_op:
                # Dependent load: wait for the previous memory op's data
                # (pointer chasing bounds MLP regardless of resources).
                if depends is not None and depends[i] and last_mem_complete > d:
                    d = last_mem_complete
                # Window (load/store-queue) slots bound in-flight memory ops.
                while lsq and lsq[0] <= d:
                    heapq.heappop(lsq)
                if len(lsq) >= iw:
                    popped = heapq.heappop(lsq)
                    if popped > d:
                        d = popped
            elif depends is not None and depends[i] and last_compute_complete > d:
                # Dependent compute op: chains through the previous compute
                # op's result, bounding ILP (and hence CPI_exe) the way real
                # dependency chains do.  Load results deliberately do not
                # feed these chains (see DESIGN.md: load consumers are
                # modelled through the ROB/window bound instead).
                d = last_compute_complete
            if stop_cycle is not None and d >= stop_cycle:
                # Quantum bound reached: this instruction dispatches in a
                # later quantum.  Restore the LSQ entry consumed while
                # computing its dispatch cycle (the full-window pop may
                # represent a still-in-flight op; re-pushing a completed
                # one is harmless).
                if popped is not None:
                    heapq.heappush(lsq, popped)
                executed = i
                break
            if d > disp_cycle:
                disp_cycle = d
                disp_count = 1
            else:
                disp_count += 1
            dispatch[i] = d

            # --- execute -------------------------------------------------
            if mem_op:
                if perfect:
                    c = d + h1
                    l1_hs[mem_i] = d
                    l1_he[mem_i] = c
                    l1_complete[mem_i] = c
                else:
                    c = memory_access(
                        int(address[i]), d, mem_i,
                        l1_hs, l1_he, l1_ms, l1_me, l1_miss, l1_sec,
                        l1_complete, l2_index,
                        l2_hs, l2_he, l2_ms, l2_me, l2_miss, l2_sec,
                        mem_index, mem_s, mem_e,
                    )
                heapq.heappush(lsq, c)
                last_mem_complete = c
                mem_i += 1
            else:
                c = d + 1
                last_compute_complete = c
            complete[i] = c

            # --- in-order retire with bandwidth ---------------------------
            r = c
            if recent_retires and recent_retires[-1] > r:
                r = recent_retires[-1]
            if r > ret_cycle:
                ret_cycle = r
                ret_count = 1
            else:
                r = ret_cycle
                if ret_count >= issue_w:
                    r += 1
                    ret_cycle = r
                    ret_count = 1
                else:
                    ret_count += 1
            retire[i] = r
            recent_retires.append(r)

        t_loop_end = perf_counter() if profile_phases else 0.0

        # Save the pipeline state so a later run(resume=True) continues
        # without an artificial drain at the quantum boundary.
        self._pipe = {
            "disp_cycle": disp_cycle,
            "disp_count": disp_count,
            "ret_cycle": ret_cycle,
            "ret_count": ret_count,
            "last_mem_complete": last_mem_complete,
            "last_compute_complete": last_compute_complete,
            "lsq": lsq,
            "recent_retires": recent_retires[-max(rob, 1):],
        }

        if executed < n:
            dispatch = dispatch[:executed]
            complete = complete[:executed]
            retire = retire[:executed]
            is_mem = np.asarray(is_mem[:executed])
            l1_hs, l1_he = l1_hs[:mem_i], l1_he[:mem_i]
            l1_ms, l1_me = l1_ms[:mem_i], l1_me[:mem_i]
            l1_miss, l1_sec = l1_miss[:mem_i], l1_sec[:mem_i]
            l1_complete, l2_index = l1_complete[:mem_i], l2_index[:mem_i]
        stats = {
            "l1_port_mean_wait": self.l1_ports.mean_wait,
            "l2_bank_mean_wait": self.l2_banks.mean_wait,
            "l1_mshr_coalescing": self.l1_mshrs.coalescing_ratio,
            "l1_mshr_peak": self.l1_mshrs.peak_occupancy,
            "l2_mshr_peak": self.l2_mshrs.peak_occupancy,
            "dram_row_hit_rate": self.dram.row_hit_rate,
            "dram_mean_bank_wait": self.dram.mean_bank_wait,
        }
        if self.prefetcher is not None:
            stats.update(
                prefetches_issued=self.prefetcher.issued,
                prefetches_useful=self.prefetcher.useful,
                prefetches_late=self.prefetcher.late,
                prefetch_accuracy=self.prefetcher.accuracy,
            )
        if self.bypass is not None:
            stats.update(
                l1_bypassed_fills=self.bypass.bypassed,
                l1_bypass_rate=self.bypass.bypass_rate,
            )
        if profile_phases:
            stats["phase_issue_loop_s"] = t_loop_end - t_loop_start
            stats["phase_fill_drain_s"] = perf_counter() - t_loop_end
        return build_simulation_result(
            config=cfg,
            trace_name=trace.name,
            executed=executed,
            dispatch=dispatch, complete=complete, retire=retire, is_mem=is_mem,
            l1_hit_start=l1_hs, l1_hit_end=l1_he,
            l1_miss_start=l1_ms, l1_miss_end=l1_me,
            l1_is_miss=l1_miss, l1_is_secondary=l1_sec,
            l1_complete=l1_complete, l2_index=l2_index,
            l2_hit_start=l2_hs, l2_hit_end=l2_he,
            l2_miss_start=l2_ms, l2_miss_end=l2_me,
            l2_is_miss=l2_miss, l2_is_secondary=l2_sec,
            mem_index=mem_index, mem_start=mem_s, mem_end=mem_e,
            component_stats=stats,
            l3_index=self._l2_l3_index if self.l3_cache is not None else None,
            l3_records=self._l3_rec,
        )

    # ------------------------------------------------------------------
    def _use_fast_path(self) -> bool:
        """Whether this run takes the specialized fast issue loop.

        Eligibility is structural, decided once per run: no prefetcher, no
        bypass detector, and an LRU L1 (the default machine).  Anything else
        routes through the reference loop, whose behaviour the fast loop is
        pinned to bit-for-bit by the equivalence suite
        (``tests/sim/test_engine_equivalence.py``).
        """
        if self.engine == "reference":
            return False
        eligible = (
            self.prefetcher is None
            and self.bypass is None
            and self.l1_cache.replacement == "lru"
            and self.l2_cache.replacement == "lru"
            and self.l1_mshrs.in_order
        )
        if self.engine == "fast" and not eligible:
            raise ConfigError(
                "engine='fast' requires no prefetcher, no L1 bypass, LRU L1 "
                "and L2, and an in-order L1 MSHR file; use engine='auto' to "
                "fall back to the reference loop"
            )
        return eligible

    def _run_impl_fast(
        self,
        trace: Trace,
        *,
        perfect: bool,
        start_cycle: int,
        stop_cycle: "int | None",
        resume: bool,
    ) -> SimulationResult:
        """Specialized issue loop for the dominant L1-hit path.

        Semantically identical to :meth:`_run_impl` restricted to the
        eligible configurations (see :meth:`_use_fast_path`); every
        timing decision, record value and component statistic matches the
        reference loop bit for bit.  The speed comes from:

        * the L1 port grant, lazy-fill check and LRU probe inlined into the
          loop body — an L1 hit costs a handful of dict/list operations
          instead of a 20-argument method call;
        * per-access reads served from plain Python lists (``tolist`` once
          per run) instead of numpy scalar indexing;
        * record columns built as append-lists and materialized into arrays
          once, after the loop;
        * port/cache/MSHR/bank counters accumulated in locals and folded
          into the scheduler/cache objects at the end of the run.

        The miss walk is inlined too — the in-order L1 MSHR present/complete,
        the L2 bank grant and the L2 LRU probe all run in the loop body; only
        an L2 miss leaves through :meth:`_l2_miss_walk` (L2 MSHRs, optional
        L3, DRAM — exactly the reference walk).
        """
        cfg = self.config
        n = trace.n_instructions
        check_int("n_instructions", n, minimum=0)

        is_mem_l = trace.is_mem.tolist()
        address_l = trace.address.tolist()
        depends = trace.depends
        depends_l = depends.tolist() if depends is not None else None
        has_dep = depends_l is not None

        issue_w = cfg.core.issue_width
        rob = cfg.core.rob_size
        iw = cfg.core.iw_size
        h1 = cfg.l1_hit_time
        stop = math.inf if stop_cycle is None else stop_cycle

        dispatch_l: list[int] = []
        complete_l: list[int] = []
        retire_l: list[int] = []

        # L1 record columns, preallocated with their miss-free defaults: a
        # hit (the common case) only writes the three columns that differ.
        n_mem_total = trace.n_mem
        l1_hs = [0] * n_mem_total
        l1_he = [0] * n_mem_total
        l1_ms = [0] * n_mem_total
        l1_me = [0] * n_mem_total
        l1_miss = [False] * n_mem_total
        l1_sec = [False] * n_mem_total
        l1_complete = [0] * n_mem_total
        l2_index = [-1] * n_mem_total

        l2_hs: list[int] = []
        l2_he: list[int] = []
        l2_ms: list[int] = []
        l2_me: list[int] = []
        l2_miss: list[bool] = []
        l2_sec: list[bool] = []
        mem_index: list[int] = []
        mem_s: list[int] = []
        mem_e: list[int] = []
        self._l3_rec = tuple([] for _ in range(7))
        self._l2_l3_index = []

        check_int("start_cycle", start_cycle, minimum=0)
        if resume and self._pipe is not None:
            pipe = self._pipe
            disp_cycle = max(pipe["disp_cycle"], start_cycle)
            disp_count = pipe["disp_count"] if disp_cycle == pipe["disp_cycle"] else 0
            ret_cycle = max(pipe["ret_cycle"], start_cycle - 1)
            ret_count = pipe["ret_count"] if ret_cycle == pipe["ret_cycle"] else 0
            last_mem_complete = pipe["last_mem_complete"]
            last_compute_complete = pipe["last_compute_complete"]
            lsq = pipe["lsq"]
            recent_retires: list[int] = pipe["recent_retires"][-rob:]
        else:
            disp_cycle = start_cycle
            disp_count = 0
            ret_cycle = start_cycle - 1
            ret_count = 0
            last_mem_complete = start_cycle
            last_compute_complete = start_cycle
            lsq = []
            recent_retires = []

        # Hot-loop bindings: everything the L1-hit path touches, resolved
        # once.  The LRU set dict is shared engine/cache state, so fills
        # applied through the fill queue stay visible to the inline probe.
        l1_cache = self.l1_cache
        l1_sets, set_mask, set_bits, offset_bits = l1_cache.lru_hot_state()
        port_heap = self.l1_ports._free_times
        single_port = len(port_heap) == 1
        port_occ = 1 if cfg.l1_pipelined else h1
        l1_assoc = cfg.l1.associativity
        fills_heap = self._l1_fills._heap
        heappush = heapq.heappush
        heappop = heapq.heappop
        heapreplace = heapq.heapreplace

        # Miss-walk bindings: the in-order L1 MSHR file, the L2 bank
        # scheduler and the L2 LRU state, all inlined below.  Dict/heap/list
        # structures are the objects' own (shared, mutated in place); clocks
        # and counters are locals folded back after the loop.
        l1m = self.l1_mshrs
        l1_out = l1m._outstanding
        l1_rel = l1m._releases
        l1_now = l1m._now
        l1_cap = l1m.capacity
        l1m_primary = 0
        l1m_secondary = 0
        l1m_stall = 0
        l1m_peak = l1m.peak_occupancy

        l1_to_l2 = cfg.l1_to_l2_delay
        h2 = cfg.l2_hit_time
        l2_occ = 1 if cfg.l2_pipelined else h2
        l2_banks = self.l2_banks
        l2_free = l2_banks._free_times
        l2_bank_mask = l2_banks._mask
        l2_cache = self.l2_cache
        l2_sets, l2_set_mask, l2_set_bits, l2_offset_bits = l2_cache.lru_hot_state()
        l2_assoc = cfg.l2.associativity
        l2_fills_heap = self._l2_fills._heap
        l2_l3_append = self._l2_l3_index.append
        l2_miss_walk = self._l2_miss_walk
        last_l2_req = self._last_l2_req
        l2_grants = 0
        l2_wait = 0
        l2_hits_n = 0
        l2_misses_n = 0
        l1_evict = 0
        l2_evict = 0

        # L2 MSHR + memory dispatch, inlined only for a private in-order L2
        # MSHR file; a shared out-of-order file (multicore) leaves through
        # :meth:`_l2_miss_walk` instead.
        l2m = self.l2_mshrs
        l2m_inline = l2m.in_order
        l2m_out = l2m._outstanding
        l2m_rel = l2m._releases
        l2m_now = l2m._now
        l2m_cap = l2m.capacity
        l2m_primary = 0
        l2m_secondary = 0
        l2m_stall = 0
        l2m_peak = l2m.peak_occupancy
        has_l3 = self.l3_cache is not None
        access_l3 = self._access_l3
        l2_to_mem = cfg.l2_to_mem_delay
        last_mem_req = self._last_mem_req
        dram_access = self.dram.access

        port_grants = 0
        port_wait = 0
        cache_hits = 0
        cache_misses = 0

        mem_i = 0  # memory-access row index
        profile_phases = profiling_enabled()
        t_loop_start = perf_counter() if profile_phases else 0.0

        executed = n
        for i in range(n):
            # --- dispatch: bandwidth + ROB + (for memory) window slots ----
            d = disp_cycle
            if disp_count >= issue_w:
                d += 1
            if len(recent_retires) >= rob:
                rr = recent_retires[-rob]
                if rr > d:
                    d = rr
            mem_op = is_mem_l[i]
            popped = None
            if mem_op:
                if has_dep and depends_l[i] and last_mem_complete > d:
                    d = last_mem_complete
                while lsq and lsq[0] <= d:
                    heappop(lsq)
                if len(lsq) >= iw:
                    popped = heappop(lsq)
                    if popped > d:
                        d = popped
            elif has_dep and depends_l[i] and last_compute_complete > d:
                d = last_compute_complete
            if d >= stop:
                if popped is not None:
                    heappush(lsq, popped)
                executed = i
                break
            if d > disp_cycle:
                disp_cycle = d
                disp_count = 1
            else:
                disp_count += 1
            dispatch_l.append(d)

            # --- execute -------------------------------------------------
            if mem_op:
                if perfect:
                    c = d + h1
                    l1_hs[mem_i] = d
                    l1_he[mem_i] = c
                    l1_complete[mem_i] = c
                else:
                    addr = address_l[i]
                    # L1 port grant, inline (PortScheduler.acquire).
                    free = port_heap[0]
                    t_port = d if d >= free else free
                    if single_port:
                        port_heap[0] = t_port + port_occ
                    else:
                        heapreplace(port_heap, t_port + port_occ)
                    port_grants += 1
                    port_wait += t_port - d
                    # Lazy fills due before the probe, inline (the fill
                    # queue's apply_until + FunctionalCache.insert for LRU).
                    while fills_heap and fills_heap[0][0] <= t_port:
                        fb = heappop(fills_heap)[1] >> offset_bits
                        ft = fb >> set_bits
                        fi = fb & set_mask
                        fs = l1_sets.get(fi)
                        if fs is None:
                            l1_sets[fi] = {ft: None}
                        elif ft in fs:
                            del fs[ft]  # refresh: reinsert at the tail
                            fs[ft] = None
                        else:
                            if len(fs) >= l1_assoc:
                                del fs[next(iter(fs))]
                                l1_evict += 1
                            fs[ft] = None
                    # LRU probe, inline (FunctionalCache.lookup).
                    block = addr >> offset_bits
                    tag = block >> set_bits
                    s = l1_sets.get(block & set_mask)
                    hit_end = t_port + h1
                    if s is not None and tag in s:
                        del s[tag]  # LRU promotion: reinsert at the tail
                        s[tag] = None
                        cache_hits += 1
                        l1_hs[mem_i] = t_port
                        l1_he[mem_i] = hit_end
                        l1_complete[mem_i] = hit_end
                        c = hit_end
                    else:
                        cache_misses += 1
                        l1_hs[mem_i] = t_port
                        l1_he[mem_i] = hit_end
                        l1_miss[mem_i] = True
                        # L1 MSHR present, inline (in-order MSHRFile.present):
                        # clamp to the file's never-rewinding clock, expire
                        # returned fills, then coalesce or allocate.
                        arr = hit_end if hit_end >= l1_now else l1_now
                        while l1_rel and l1_rel[0][0] <= arr:
                            rel_block = heappop(l1_rel)[1]
                            f = l1_out.get(rel_block)
                            if f is not None and f <= arr:
                                del l1_out[rel_block]
                        fill = l1_out.get(block)
                        if fill is not None and fill > arr:
                            # Secondary miss: ride the outstanding fill.
                            l1m_secondary += 1
                            c = fill if fill > hit_end else hit_end
                            l1_sec[mem_i] = True
                            l1_ms[mem_i] = hit_end
                            l1_me[mem_i] = c
                            l1_complete[mem_i] = c
                        else:
                            grant = arr
                            if len(l1_out) >= l1_cap:
                                # Full: stall until the earliest fill returns.
                                earliest = l1_rel[0][0]
                                if earliest > grant:
                                    grant = earliest
                                while l1_rel and l1_rel[0][0] <= grant:
                                    rel_block = heappop(l1_rel)[1]
                                    f = l1_out.get(rel_block)
                                    if f is not None and f <= grant:
                                        del l1_out[rel_block]
                            l1_now = grant
                            l1m_primary += 1
                            l1m_stall += grant - arr
                            # L2 request (in-order miss queue: clamp monotonic).
                            t_l2 = grant + l1_to_l2
                            if t_l2 < last_l2_req:
                                t_l2 = last_l2_req
                            last_l2_req = t_l2
                            # L2 bank grant, inline (BankScheduler.acquire).
                            bank = block & l2_bank_mask
                            bfree = l2_free[bank]
                            t_bank = t_l2 if t_l2 >= bfree else bfree
                            l2_free[bank] = t_bank + l2_occ
                            l2_grants += 1
                            l2_wait += t_bank - t_l2
                            while l2_fills_heap and l2_fills_heap[0][0] <= t_l2:
                                fb = heappop(l2_fills_heap)[1] >> l2_offset_bits
                                ft = fb >> l2_set_bits
                                fi = fb & l2_set_mask
                                fs = l2_sets.get(fi)
                                if fs is None:
                                    l2_sets[fi] = {ft: None}
                                elif ft in fs:
                                    del fs[ft]
                                    fs[ft] = None
                                else:
                                    if len(fs) >= l2_assoc:
                                        del fs[next(iter(fs))]
                                        l2_evict += 1
                                    fs[ft] = None
                            # L2 LRU probe, inline.
                            l2_block = addr >> l2_offset_bits
                            l2_tag = l2_block >> l2_set_bits
                            s2 = l2_sets.get(l2_block & l2_set_mask)
                            l2_row = len(l2_hs)
                            l2_hit_end = t_bank + h2
                            l2_hs.append(t_bank)
                            l2_he.append(l2_hit_end)
                            if s2 is not None and l2_tag in s2:
                                del s2[l2_tag]
                                s2[l2_tag] = None
                                l2_hits_n += 1
                                l2_ms.append(0)
                                l2_me.append(0)
                                l2_miss.append(False)
                                l2_sec.append(False)
                                mem_index.append(-1)
                                l2_l3_append(-1)
                                data_at_l1 = l2_hit_end + l1_to_l2
                            elif not l2m_inline:
                                l2_misses_n += 1
                                data_at_l1 = l2_miss_walk(
                                    addr, block, l2_hit_end,
                                    l2_ms, l2_me, l2_miss, l2_sec,
                                    mem_index, mem_s, mem_e,
                                ) + l1_to_l2
                            else:
                                l2_misses_n += 1
                                l2_miss.append(True)
                                # L2 MSHR present, inline (in-order).
                                arr2 = (
                                    l2_hit_end if l2_hit_end >= l2m_now
                                    else l2m_now
                                )
                                while l2m_rel and l2m_rel[0][0] <= arr2:
                                    rb = heappop(l2m_rel)[1]
                                    f2 = l2m_out.get(rb)
                                    if f2 is not None and f2 <= arr2:
                                        del l2m_out[rb]
                                fill2 = l2m_out.get(block)
                                if fill2 is not None and fill2 > arr2:
                                    l2m_secondary += 1
                                    l2_sec.append(True)
                                    mem_index.append(-1)
                                    l2_l3_append(-1)
                                    mem_ready = (
                                        fill2 if fill2 > l2_hit_end
                                        else l2_hit_end
                                    )
                                else:
                                    grant2 = arr2
                                    if len(l2m_out) >= l2m_cap:
                                        e2 = l2m_rel[0][0]
                                        if e2 > grant2:
                                            grant2 = e2
                                        while l2m_rel and l2m_rel[0][0] <= grant2:
                                            rb = heappop(l2m_rel)[1]
                                            f2 = l2m_out.get(rb)
                                            if f2 is not None and f2 <= grant2:
                                                del l2m_out[rb]
                                    l2m_now = grant2
                                    l2m_primary += 1
                                    l2m_stall += grant2 - arr2
                                    l2_sec.append(False)
                                    if has_l3:
                                        l3_row, mem_ready = access_l3(
                                            addr, block,
                                            grant2 + cfg.l2_to_l3_delay,
                                            mem_s, mem_e,
                                        )
                                        mem_index.append(-1)
                                        l2_l3_append(l3_row)
                                    else:
                                        t_mem = grant2 + l2_to_mem
                                        if t_mem < last_mem_req:
                                            t_mem = last_mem_req
                                        last_mem_req = t_mem
                                        dres = dram_access(block, t_mem)
                                        mem_index.append(len(mem_s))
                                        mem_s.append(dres.service_start)
                                        mem_e.append(dres.service_end)
                                        mem_ready = dres.data_ready + l2_to_mem
                                        l2_l3_append(-1)
                                    # L2 fill + MSHR completion, inline.
                                    heappush(l2_fills_heap, (mem_ready, addr))
                                    l2m_out[block] = mem_ready
                                    heappush(l2m_rel, (mem_ready, block))
                                    occ2 = len(l2m_out)
                                    if occ2 > l2m_peak:
                                        l2m_peak = occ2
                                l2_ms.append(l2_hit_end)
                                l2_me.append(
                                    mem_ready if mem_ready > l2_hit_end
                                    else l2_hit_end
                                )
                                data_at_l1 = mem_ready + l1_to_l2
                            l2_index[mem_i] = l2_row
                            # L1 fill + MSHR completion, inline.
                            heappush(fills_heap, (data_at_l1, addr))
                            l1_out[block] = data_at_l1
                            heappush(l1_rel, (data_at_l1, block))
                            occ = len(l1_out)
                            if occ > l1m_peak:
                                l1m_peak = occ
                            l1_ms[mem_i] = hit_end
                            c = data_at_l1 if data_at_l1 > hit_end else hit_end
                            l1_me[mem_i] = c
                            l1_complete[mem_i] = c
                heappush(lsq, c)
                last_mem_complete = c
                mem_i += 1
            else:
                c = d + 1
                last_compute_complete = c
            complete_l.append(c)

            # --- in-order retire with bandwidth ---------------------------
            r = c
            if recent_retires and recent_retires[-1] > r:
                r = recent_retires[-1]
            if r > ret_cycle:
                ret_cycle = r
                ret_count = 1
            else:
                r = ret_cycle
                if ret_count >= issue_w:
                    r += 1
                    ret_cycle = r
                    ret_count = 1
                else:
                    ret_count += 1
            retire_l.append(r)
            recent_retires.append(r)

        t_loop_end = perf_counter() if profile_phases else 0.0

        # Fold the locally accumulated counters back into the shared
        # scheduler/cache objects so component statistics (and any direct
        # inspection of them) match the reference loop exactly.
        self.l1_ports.grants += port_grants
        self.l1_ports.total_wait += port_wait
        l1_cache.hits += cache_hits
        l1_cache.misses += cache_misses
        l1m._now = l1_now
        l1m.primary_misses += l1m_primary
        l1m.secondary_misses += l1m_secondary
        l1m.full_stall_cycles += l1m_stall
        l1m.peak_occupancy = l1m_peak
        l2_banks.grants += l2_grants
        l2_banks.total_wait += l2_wait
        l2_cache.hits += l2_hits_n
        l2_cache.misses += l2_misses_n
        l1_cache.evictions += l1_evict
        l2_cache.evictions += l2_evict
        self._last_l2_req = last_l2_req
        if l2m_inline:
            # Only the inline path tracked these locally; the out-of-order
            # walk mutated the MSHR file (and _last_mem_req) directly.
            l2m._now = l2m_now
            l2m.primary_misses += l2m_primary
            l2m.secondary_misses += l2m_secondary
            l2m.full_stall_cycles += l2m_stall
            l2m.peak_occupancy = l2m_peak
            if not has_l3:
                self._last_mem_req = last_mem_req

        self._pipe = {
            "disp_cycle": disp_cycle,
            "disp_count": disp_count,
            "ret_cycle": ret_cycle,
            "ret_count": ret_count,
            "last_mem_complete": last_mem_complete,
            "last_compute_complete": last_compute_complete,
            "lsq": lsq,
            "recent_retires": recent_retires[-max(rob, 1):],
        }

        if executed < n:
            # Quantum bound hit: drop the preallocated rows never reached.
            l1_hs, l1_he = l1_hs[:mem_i], l1_he[:mem_i]
            l1_ms, l1_me = l1_ms[:mem_i], l1_me[:mem_i]
            l1_miss, l1_sec = l1_miss[:mem_i], l1_sec[:mem_i]
            l1_complete, l2_index = l1_complete[:mem_i], l2_index[:mem_i]
        stats = {
            "l1_port_mean_wait": self.l1_ports.mean_wait,
            "l2_bank_mean_wait": self.l2_banks.mean_wait,
            "l1_mshr_coalescing": self.l1_mshrs.coalescing_ratio,
            "l1_mshr_peak": self.l1_mshrs.peak_occupancy,
            "l2_mshr_peak": self.l2_mshrs.peak_occupancy,
            "dram_row_hit_rate": self.dram.row_hit_rate,
            "dram_mean_bank_wait": self.dram.mean_bank_wait,
        }
        if profile_phases:
            stats["phase_issue_loop_s"] = t_loop_end - t_loop_start
            stats["phase_fill_drain_s"] = perf_counter() - t_loop_end
        return build_simulation_result(
            config=cfg,
            trace_name=trace.name,
            executed=executed,
            dispatch=dispatch_l, complete=complete_l, retire=retire_l,
            is_mem=trace.is_mem[:executed],
            l1_hit_start=l1_hs, l1_hit_end=l1_he,
            l1_miss_start=l1_ms, l1_miss_end=l1_me,
            l1_is_miss=l1_miss, l1_is_secondary=l1_sec,
            l1_complete=l1_complete, l2_index=l2_index,
            l2_hit_start=l2_hs, l2_hit_end=l2_he,
            l2_miss_start=l2_ms, l2_miss_end=l2_me,
            l2_is_miss=l2_miss, l2_is_secondary=l2_sec,
            mem_index=mem_index, mem_start=mem_s, mem_end=mem_e,
            component_stats=stats,
            l3_index=self._l2_l3_index if self.l3_cache is not None else None,
            l3_records=self._l3_rec,
        )

    def _l2_miss_walk(
        self, addr, block, l2_hit_end,
        l2_ms, l2_me, l2_miss, l2_sec, mem_index, mem_s, mem_e,
    ) -> int:
        """Fast-path L2-miss continuation: exactly the reference walk.

        The caller already granted the L2 bank, applied due L2 fills and
        probed (and missed) the inline L2 LRU state; this is the miss
        branch of :meth:`_access_l2` — L2 MSHRs, then the optional L3 or
        DRAM — returning the cycle the data is back at the L2.
        """
        cfg = self.config
        l2_miss.append(True)
        l2_miss_start = l2_hit_end
        res2 = self.l2_mshrs.present(block, l2_miss_start)
        if res2.is_secondary:
            l2_sec.append(True)
            mem_index.append(-1)
            self._l2_l3_index.append(-1)
            mem_ready = res2.fill_time if res2.fill_time > l2_hit_end else l2_hit_end
        else:
            l2_sec.append(False)
            if self.l3_cache is not None:
                t_l3_req = res2.grant_time + cfg.l2_to_l3_delay
                l3_row, mem_ready = self._access_l3(
                    addr, block, t_l3_req, mem_s, mem_e
                )
                mem_index.append(-1)
                self._l2_l3_index.append(l3_row)
            else:
                t_mem_req = res2.grant_time + cfg.l2_to_mem_delay
                if t_mem_req < self._last_mem_req:
                    t_mem_req = self._last_mem_req
                self._last_mem_req = t_mem_req
                dres = self.dram.access(block, t_mem_req)
                mem_index.append(len(mem_s))
                mem_s.append(dres.service_start)
                mem_e.append(dres.service_end)
                mem_ready = dres.data_ready + cfg.l2_to_mem_delay
                self._l2_l3_index.append(-1)
            self._l2_fills.schedule(mem_ready, addr)
            self.l2_mshrs.complete_primary(block, mem_ready)
        l2_ms.append(l2_miss_start)
        l2_me.append(mem_ready if mem_ready > l2_miss_start else l2_miss_start)
        return mem_ready

    # ------------------------------------------------------------------
    def _memory_access(
        self, addr, t_request, mem_i,
        l1_hs, l1_he, l1_ms, l1_me, l1_miss, l1_sec, l1_complete, l2_index,
        l2_hs, l2_he, l2_ms, l2_me, l2_miss, l2_sec,
        mem_index, mem_s, mem_e,
    ) -> int:
        """Walk one access through L1/L2/DRAM; fills record arrays; returns
        the data-ready cycle."""
        cfg = self.config
        h1 = cfg.l1_hit_time
        block = addr >> self._offset_bits

        # L1: port grant, lazy fill application, lookup.
        t_port = self.l1_ports.acquire(t_request, 1 if cfg.l1_pipelined else h1)
        self._l1_fills.apply_until(self.l1_cache, t_port)
        hit = self.l1_cache.lookup(addr)
        l1_hs[mem_i] = t_port
        hit_end = t_port + h1
        l1_he[mem_i] = hit_end
        # Selective replacement: train the stream detector on every access;
        # a confirmed-stream miss will skip L1 allocation below.
        bypass_fill = (
            self.bypass.observe_and_classify(addr) if self.bypass is not None else False
        )
        prefetcher = self.prefetcher
        if hit:
            if prefetcher is not None:
                if self._prefetch_fills.pop(block, None) is not None:
                    prefetcher.useful += 1
                self._issue_prefetches(
                    addr, hit_end,
                    l2_hs, l2_he, l2_ms, l2_me, l2_miss, l2_sec,
                    mem_index, mem_s, mem_e,
                )
            l1_complete[mem_i] = hit_end
            return hit_end

        # L1 miss.
        l1_miss[mem_i] = True
        miss_start = hit_end
        if prefetcher is not None:
            pending = self._prefetch_fills.pop(block, None)
            if pending is not None and pending > t_port:
                # Late prefetch: the fill is already on its way; ride it.
                prefetcher.late += 1
                done = pending if pending > hit_end else hit_end
                l1_sec[mem_i] = True
                l1_ms[mem_i] = miss_start
                l1_me[mem_i] = done
                l1_complete[mem_i] = done
                self._issue_prefetches(
                    addr, hit_end,
                    l2_hs, l2_he, l2_ms, l2_me, l2_miss, l2_sec,
                    mem_index, mem_s, mem_e,
                )
                return done
        res = self.l1_mshrs.present(block, miss_start)
        if res.is_secondary:
            done = res.fill_time if res.fill_time > hit_end else hit_end
            l1_sec[mem_i] = True
            l1_ms[mem_i] = miss_start
            l1_me[mem_i] = done
            l1_complete[mem_i] = done
            return done

        # Primary miss -> L2 request (in-order miss queue: clamp monotonic).
        t_l2_req = res.grant_time + cfg.l1_to_l2_delay
        l2_row, data_at_l1 = self._access_l2(
            addr, block, t_l2_req,
            l2_hs, l2_he, l2_ms, l2_me, l2_miss, l2_sec,
            mem_index, mem_s, mem_e,
        )
        l2_index[mem_i] = l2_row

        if not bypass_fill:
            self._l1_fills.schedule(data_at_l1, addr)
        self.l1_mshrs.complete_primary(block, data_at_l1)
        l1_ms[mem_i] = miss_start
        l1_me[mem_i] = data_at_l1 if data_at_l1 > miss_start else miss_start
        l1_complete[mem_i] = data_at_l1 if data_at_l1 > hit_end else hit_end
        if prefetcher is not None:
            self._issue_prefetches(
                addr, hit_end,
                l2_hs, l2_he, l2_ms, l2_me, l2_miss, l2_sec,
                mem_index, mem_s, mem_e,
            )
        return int(l1_complete[mem_i])

    def _access_l2(
        self, addr, block, t_l2_req,
        l2_hs, l2_he, l2_ms, l2_me, l2_miss, l2_sec,
        mem_index, mem_s, mem_e,
    ) -> tuple[int, int]:
        """L2 (and, on miss, DRAM) walk shared by demand misses and
        prefetches; returns (L2 record row, data-at-L1 cycle)."""
        cfg = self.config
        h2 = cfg.l2_hit_time
        if t_l2_req < self._last_l2_req:
            t_l2_req = self._last_l2_req
        self._last_l2_req = t_l2_req

        l2_occ = 1 if cfg.l2_pipelined else h2
        t_bank = self.l2_banks.acquire(block, t_l2_req, l2_occ)
        self._l2_fills.apply_until(self.l2_cache, t_l2_req)
        l2_hit = self.l2_cache.lookup(addr)
        l2_row = len(l2_hs)
        l2_hs.append(t_bank)
        l2_hit_end = t_bank + h2
        l2_he.append(l2_hit_end)

        if l2_hit:
            l2_ms.append(0)
            l2_me.append(0)
            l2_miss.append(False)
            l2_sec.append(False)
            mem_index.append(-1)
            self._l2_l3_index.append(-1)
            data_at_l1 = l2_hit_end + cfg.l1_to_l2_delay
        else:
            l2_miss.append(True)
            l2_miss_start = l2_hit_end
            res2 = self.l2_mshrs.present(block, l2_miss_start)
            if res2.is_secondary:
                l2_sec.append(True)
                mem_index.append(-1)
                self._l2_l3_index.append(-1)
                mem_ready = res2.fill_time if res2.fill_time > l2_hit_end else l2_hit_end
            else:
                l2_sec.append(False)
                if self.l3_cache is not None:
                    t_l3_req = res2.grant_time + cfg.l2_to_l3_delay
                    l3_row, mem_ready = self._access_l3(
                        addr, block, t_l3_req, mem_s, mem_e
                    )
                    mem_index.append(-1)
                    self._l2_l3_index.append(l3_row)
                else:
                    t_mem_req = res2.grant_time + cfg.l2_to_mem_delay
                    if t_mem_req < self._last_mem_req:
                        t_mem_req = self._last_mem_req
                    self._last_mem_req = t_mem_req
                    dres = self.dram.access(block, t_mem_req)
                    mem_index.append(len(mem_s))
                    mem_s.append(dres.service_start)
                    mem_e.append(dres.service_end)
                    mem_ready = dres.data_ready + cfg.l2_to_mem_delay
                    self._l2_l3_index.append(-1)
                self._l2_fills.schedule(mem_ready, addr)
                self.l2_mshrs.complete_primary(block, mem_ready)
            l2_ms.append(l2_miss_start)
            l2_me.append(mem_ready if mem_ready > l2_miss_start else l2_miss_start)
            data_at_l1 = mem_ready + cfg.l1_to_l2_delay
        return l2_row, data_at_l1

    def _access_l3(
        self, addr, block, t_l3_req, mem_s, mem_e
    ) -> tuple[int, int]:
        """Optional L3 walk (mirrors :meth:`_access_l2`); returns the L3
        record row and the cycle data is back at the L2."""
        cfg = self.config
        h3 = cfg.l3_hit_time
        if t_l3_req < self._last_l3_req:
            t_l3_req = self._last_l3_req
        self._last_l3_req = t_l3_req

        l3_hs, l3_he, l3_ms, l3_me, l3_miss, l3_sec, l3_mem_index = self._l3_rec
        l3_occ = 1 if cfg.l3_pipelined else h3
        t_bank = self.l3_banks.acquire(block, t_l3_req, l3_occ)
        self._l3_fills.apply_until(self.l3_cache, t_l3_req)
        l3_hit = self.l3_cache.lookup(addr)
        l3_row = len(l3_hs)
        l3_hs.append(t_bank)
        l3_hit_end = t_bank + h3
        l3_he.append(l3_hit_end)

        if l3_hit:
            l3_ms.append(0)
            l3_me.append(0)
            l3_miss.append(False)
            l3_sec.append(False)
            l3_mem_index.append(-1)
            data_at_l2 = l3_hit_end + cfg.l2_to_l3_delay
        else:
            l3_miss.append(True)
            miss_start = l3_hit_end
            res3 = self.l3_mshrs.present(block, miss_start)
            if res3.is_secondary:
                l3_sec.append(True)
                l3_mem_index.append(-1)
                mem_ready = res3.fill_time if res3.fill_time > miss_start else miss_start
            else:
                l3_sec.append(False)
                t_mem_req = res3.grant_time + cfg.l2_to_mem_delay
                if t_mem_req < self._last_mem_req:
                    t_mem_req = self._last_mem_req
                self._last_mem_req = t_mem_req
                dres = self.dram.access(block, t_mem_req)
                l3_mem_index.append(len(mem_s))
                mem_s.append(dres.service_start)
                mem_e.append(dres.service_end)
                mem_ready = dres.data_ready + cfg.l2_to_mem_delay
                self._l3_fills.schedule(mem_ready, addr)
                self.l3_mshrs.complete_primary(block, mem_ready)
            l3_ms.append(miss_start)
            l3_me.append(mem_ready if mem_ready > miss_start else miss_start)
            data_at_l2 = mem_ready + cfg.l2_to_l3_delay
        return l3_row, data_at_l2

    def _issue_prefetches(
        self, addr, now,
        l2_hs, l2_he, l2_ms, l2_me, l2_miss, l2_sec,
        mem_index, mem_s, mem_e,
    ) -> None:
        """Train the prefetcher on *addr* and turn candidates into traffic.

        Prefetches consume real L2 bank slots (and DRAM banks on L2 misses)
        through :meth:`_access_l2`, and their fills land in the L1 through
        the same lazy fill queue as demand fills — including the cache
        pollution that implies.  Candidates already resident, in flight, or
        beyond the outstanding budget are dropped.
        """
        prefetcher = self.prefetcher
        assert prefetcher is not None
        candidates = prefetcher.observe(addr)
        if not candidates:
            return
        offset_bits = self._offset_bits
        outstanding = sum(1 for t in self._prefetch_fills.values() if t > now)
        budget = prefetcher.config.max_outstanding - outstanding
        for pf_block in candidates:
            if budget <= 0:
                break
            if pf_block < 0:
                continue
            pf_addr = pf_block << offset_bits
            if pf_block in self._prefetch_fills and self._prefetch_fills[pf_block] > now:
                continue
            if self.l1_cache.contains(pf_addr):
                continue
            _, data_at_l1 = self._access_l2(
                pf_addr, pf_block, now + 1,
                l2_hs, l2_he, l2_ms, l2_me, l2_miss, l2_sec,
                mem_index, mem_s, mem_e,
            )
            self._l1_fills.schedule(data_at_l1, pf_addr)
            self._prefetch_fills[pf_block] = data_at_l1
            prefetcher.issued += 1
            budget -= 1
