"""Functional set-associative cache model with pluggable replacement.

This is the *contents* model only — which blocks are resident and which
victim is chosen — used by the timing engine to classify accesses as hits
or misses.  All timing (ports, MSHRs, banks) lives in the engine.

Replacement policies:

``lru``
    True least-recently-used, O(1) per operation using the insertion order
    of a ``dict`` (hit = delete + reinsert at the tail; victim = head).
``fifo``
    Insertion order only; hits do not promote.
``random``
    Uniform random victim (seeded generator for reproducibility).
``plru``
    Tree pseudo-LRU for power-of-two associativity — the common hardware
    approximation; the tree bits steer to the pseudo-least-recent way.
"""

from __future__ import annotations

import numpy as np

from repro.sim.params import CacheGeometry
from repro.util.rng import make_rng

__all__ = ["FunctionalCache"]


class _TreePLRUSet:
    """One set's tree-PLRU state: ways stored in fixed slots, tree bits steer."""

    __slots__ = ("ways", "tags", "bits", "assoc")

    def __init__(self, assoc: int) -> None:
        self.assoc = assoc
        self.ways: list[int | None] = [None] * assoc
        self.tags: dict[int, int] = {}  # tag -> way index
        self.bits = [0] * max(assoc - 1, 1)  # internal tree nodes

    def _touch(self, way: int) -> None:
        # Walk root->leaf; at each node point the bit *away* from this way.
        node = 0
        lo, hi = 0, self.assoc
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if way < mid:
                self.bits[node] = 1  # pseudo-LRU is on the right
                node = 2 * node + 1
                hi = mid
            else:
                self.bits[node] = 0  # pseudo-LRU is on the left
                node = 2 * node + 2
                lo = mid

    def _victim_way(self) -> int:
        node = 0
        lo, hi = 0, self.assoc
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if self.bits[node]:
                node = 2 * node + 2
                lo = mid
            else:
                node = 2 * node + 1
                hi = mid
        return lo

    def lookup(self, tag: int) -> bool:
        way = self.tags.get(tag)
        if way is None:
            return False
        self._touch(way)
        return True

    def insert(self, tag: int) -> int | None:
        for way, resident in enumerate(self.ways):
            if resident is None:
                self.ways[way] = tag
                self.tags[tag] = way
                self._touch(way)
                return None
        way = self._victim_way()
        victim = self.ways[way]
        assert victim is not None
        del self.tags[victim]
        self.ways[way] = tag
        self.tags[tag] = way
        self._touch(way)
        return victim

    def evict(self, tag: int) -> bool:
        way = self.tags.pop(tag, None)
        if way is None:
            return False
        self.ways[way] = None
        return True

    def __contains__(self, tag: int) -> bool:
        return tag in self.tags

    def __len__(self) -> int:
        return len(self.tags)


class FunctionalCache:
    """Set-associative cache contents under a replacement policy.

    Addresses are byte addresses; the cache operates on block (line)
    granularity.  ``lookup`` both probes and applies the policy's hit
    promotion; ``insert`` fills a block and returns the evicted block
    address (or ``None``).
    """

    def __init__(self, geometry: CacheGeometry, *, seed: int | None = 0) -> None:
        self.geometry = geometry
        self._offset_bits = geometry.offset_bits
        self._set_mask = geometry.n_sets - 1
        self._set_bits = geometry.n_sets.bit_length() - 1
        self._assoc = geometry.associativity
        self._policy = geometry.replacement
        if self._policy == "plru":
            if self._assoc & (self._assoc - 1):
                raise ValueError("plru requires power-of-two associativity")
            self._plru_sets: dict[int, _TreePLRUSet] = {}
        else:
            # dict-of-dicts: set index -> {tag: None} preserving order
            self._sets: dict[int, dict[int, None]] = {}
        self._rng = make_rng(seed)
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- address helpers -------------------------------------------------
    def block_of(self, address: int) -> int:
        """Block (line) number of a byte address."""
        return address >> self._offset_bits

    def set_index_of(self, block: int) -> int:
        """Set index of a block number."""
        return block & self._set_mask

    def tag_of(self, block: int) -> int:
        """Tag of a block number."""
        return block >> self._set_bits

    # -- contents operations ---------------------------------------------
    def lookup(self, address: int) -> bool:
        """Probe the block containing *address*; True on hit.

        On a hit the replacement state is updated (LRU/PLRU promotion);
        on a miss nothing changes — the caller decides when the fill
        lands via :meth:`insert`.
        """
        block = address >> self._offset_bits
        set_idx = block & self._set_mask
        tag = block >> self._set_bits
        if self._policy == "plru":
            s = self._plru_sets.get(set_idx)
            hit = s.lookup(tag) if s is not None else False
        else:
            s = self._sets.get(set_idx)
            if s is not None and tag in s:
                if self._policy == "lru":
                    del s[tag]
                    s[tag] = None
                hit = True
            else:
                hit = False
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        return hit

    def contains(self, address: int) -> bool:
        """Probe without updating replacement state or counters."""
        block = address >> self._offset_bits
        set_idx = block & self._set_mask
        tag = block >> self._set_bits
        if self._policy == "plru":
            s = self._plru_sets.get(set_idx)
            return s is not None and tag in s
        s = self._sets.get(set_idx)
        return s is not None and tag in s

    def insert(self, address: int) -> int | None:
        """Fill the block containing *address*; return evicted block address.

        Filling a block that is already resident refreshes its replacement
        position and evicts nothing.
        """
        block = address >> self._offset_bits
        set_idx = block & self._set_mask
        tag = block >> self._set_bits
        if self._policy == "plru":
            s = self._plru_sets.get(set_idx)
            if s is None:
                s = self._plru_sets[set_idx] = _TreePLRUSet(self._assoc)
            if tag in s:
                s.lookup(tag)
                return None
            victim_tag = s.insert(tag)
            if victim_tag is None:
                return None
            self.evictions += 1
            return self._block_address(victim_tag, set_idx)

        s = self._sets.get(set_idx)
        if s is None:
            s = self._sets[set_idx] = {}
        if tag in s:
            if self._policy == "lru":
                del s[tag]
                s[tag] = None
            return None
        victim_tag: int | None = None
        if len(s) >= self._assoc:
            if self._policy == "random":
                keys = list(s.keys())
                victim_tag = keys[int(self._rng.integers(len(keys)))]
                del s[victim_tag]
            else:  # lru / fifo evict the head (oldest)
                victim_tag = next(iter(s))
                del s[victim_tag]
            self.evictions += 1
        s[tag] = None
        if victim_tag is None:
            return None
        return self._block_address(victim_tag, set_idx)

    def evict(self, address: int) -> bool:
        """Remove the block containing *address* if resident; True if removed."""
        block = address >> self._offset_bits
        set_idx = block & self._set_mask
        tag = block >> self._set_bits
        if self._policy == "plru":
            s = self._plru_sets.get(set_idx)
            return s.evict(tag) if s is not None else False
        s = self._sets.get(set_idx)
        if s is not None and tag in s:
            del s[tag]
            return True
        return False

    def _block_address(self, tag: int, set_idx: int) -> int:
        return ((tag << self._set_bits) | set_idx) << self._offset_bits

    @property
    def replacement(self) -> str:
        """The replacement policy this cache was built with."""
        return self._policy

    def lru_hot_state(self) -> "tuple[dict[int, dict[int, None]], int, int, int]":
        """Internal lookup state for the engine's inlined LRU probe.

        Returns ``(sets, set_mask, set_bits, offset_bits)``.  Only valid for
        the ``lru`` policy; the engine fast path (see
        :meth:`repro.sim.engine.HierarchySimulator._run_impl_fast`) binds
        these once per run so the per-access probe is two dict operations
        instead of a method call.  The dict is shared state, not a copy —
        mutations through it are mutations of the cache.
        """
        if self._policy != "lru":
            raise ValueError(f"lru_hot_state() needs policy 'lru', not {self._policy!r}")
        return self._sets, self._set_mask, self._set_bits, self._offset_bits

    # -- introspection -----------------------------------------------------
    def resident_blocks(self) -> int:
        """Total number of blocks currently resident."""
        if self._policy == "plru":
            return sum(len(s) for s in self._plru_sets.values())
        return sum(len(s) for s in self._sets.values())

    def set_occupancy(self, set_idx: int) -> int:
        """Number of resident ways in one set."""
        if self._policy == "plru":
            s = self._plru_sets.get(set_idx)
        else:
            s = self._sets.get(set_idx)
        return len(s) if s is not None else 0

    @property
    def miss_rate(self) -> float:
        """Observed lookup miss rate so far (0 before any lookup)."""
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    def reset_counters(self) -> None:
        """Zero the hit/miss/eviction counters, keeping contents."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def warm_lookup_array(self, addresses: np.ndarray) -> None:
        """Warm the cache by touching each address in order (no stats)."""
        saved = (self.hits, self.misses, self.evictions)
        for addr in addresses:
            a = int(addr)
            if not self.lookup(a):
                self.insert(a)
        self.hits, self.misses, self.evictions = saved
