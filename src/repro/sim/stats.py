"""From simulator records to the paper's quantities.

:func:`measure_hierarchy` feeds each layer's activity intervals into the
C-AMAT analyzer and combines the per-layer measurements with the
processor-side observations (CPI, CPI_exe, f_mem, overlap ratio) into a
:class:`HierarchyStats`, which in turn assembles the paper's
:class:`~repro.core.lpm.LPMRReport` (Eqs. 9-11) for the LPM algorithm.

Measurement conventions (DESIGN.md section 5):

* ``MR1`` reported two ways: the conventional miss rate (all misses over
  accesses) and the *request-rate* miss ratio (primary misses only — what
  actually reaches L2 after MSHR coalescing).  The LPMR formulas use the
  request-rate version, because LPMR is literally request rate over supply
  rate; the conventional one is kept for AMAT-style comparisons.
* ``CPI_exe`` is measured by re-running the trace with a perfect L1
  (``perfect=True``), exactly the paper's "computation cycles per
  instruction under perfect cache".
* Data stall time per instruction = ``CPI - CPI_exe`` (clamped at 0); the
  overlap ratio of Eq. (8) then follows from Eq. (7) as
  ``1 - stall_cycles / memory_active_cycles`` — this is the definitional
  equivalence proved in the paper's reference [17].
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analyzer import LayerMeasurement, measure_layer
from repro.core.lpm import LPMRReport
from repro.core.stall import StallModel
from repro.lint.contracts import satisfies
from repro.sim.engine import HierarchySimulator, SimulationResult
from repro.sim.params import MachineConfig
from repro.util.validation import safe_ratio
from repro.workloads.trace import Trace

__all__ = [
    "HierarchyStats",
    "measure_hierarchy",
    "simulate_and_measure",
    "simulate_and_measure_batch",
]

#: Overlap ratios are capped strictly below 1 so threshold formulas stay
#: finite; a measured 1.0 means "no observable stall at all".
_MAX_OVERLAP = 1.0 - 1e-9


@dataclass(frozen=True)
class HierarchyStats:
    """Per-layer C-AMAT measurements plus processor-side context."""

    l1: LayerMeasurement
    l2: LayerMeasurement
    mem: LayerMeasurement
    cpi: float
    cpi_exe: float
    f_mem: float
    n_instructions: int
    mr1_conventional: float
    mr1_request: float
    mr2_conventional: float
    mr2_request: float
    #: Present only when the machine has a third cache level.
    l3: "LayerMeasurement | None" = None
    mr3_conventional: float = 0.0
    mr3_request: float = 0.0

    @property
    def stall_per_instruction(self) -> float:
        """Measured data stall time per instruction (CPI - CPI_exe)."""
        return max(self.cpi - self.cpi_exe, 0.0)

    @property
    def stall_fraction_of_compute(self) -> float:
        """Stall as a fraction of pure compute time (the Δ% quantity)."""
        return safe_ratio(self.stall_per_instruction, self.cpi_exe)

    @property
    def overlap_ratio_cm(self) -> float:
        """Eq. (8) overlap ratio, measured via the Eq. (7) identity."""
        active = self.l1.active_cycles
        if active == 0:
            return 0.0
        stall_cycles = self.stall_per_instruction * self.n_instructions
        ratio = 1.0 - stall_cycles / active
        return min(max(ratio, 0.0), _MAX_OVERLAP)

    @property
    def eta_combined(self) -> float:
        """The Eq. (13) effectiveness factor (pure cycles / miss cycles at L1)."""
        return safe_ratio(self.l1.pure_miss_cycles, self.l1.miss_active_cycles)

    @property
    def lpmr1(self) -> float:
        """Eq. (9)."""
        return safe_ratio(self.l1.camat * self.f_mem, self.cpi_exe)

    @property
    def lpmr2(self) -> float:
        """Eq. (10), with the request-rate MR1 (post-coalescing)."""
        return safe_ratio(self.l2.camat * self.f_mem * self.mr1_request, self.cpi_exe)

    @property
    def lpmr3(self) -> float:
        """Eq. (11), with request-rate miss ratios.

        With two cache levels this matches the paper's (LLC, MM) pair; with
        a third level configured it becomes the (L2, L3) matching ratio and
        :attr:`lpmr4` carries the (L3, MM) pair.
        """
        third = self.l3 if self.l3 is not None else self.mem
        return safe_ratio(
            third.camat * self.f_mem * self.mr1_request * self.mr2_request, self.cpi_exe
        )

    @property
    def lpmr4(self) -> float:
        """The (L3, main memory) matching ratio; 0 without an L3."""
        if self.l3 is None:
            return 0.0
        return safe_ratio(
            self.mem.camat * self.f_mem * self.mr1_request
            * self.mr2_request * self.mr3_request,
            self.cpi_exe,
        )

    @property
    def stall_model(self) -> StallModel:
        """Processor-side parameter bundle for the stall formulas."""
        return StallModel(
            f_mem=min(self.f_mem, 1.0),
            cpi_exe=max(self.cpi_exe, 1e-12),
            overlap_ratio_cm=self.overlap_ratio_cm,
        )

    @satisfies("lpmr_definitions", "report_bounds", "finite_report")
    def lpmr_report(self) -> LPMRReport:
        """The full matching snapshot consumed by the LPM algorithm."""
        return LPMRReport(
            lpmr1=self.lpmr1,
            lpmr2=self.lpmr2,
            lpmr3=self.lpmr3,
            camat1=self.l1.camat,
            camat2=self.l2.camat,
            camat3=self.mem.camat,
            mr1=self.mr1_request,
            mr2=self.mr2_request,
            f_mem=min(self.f_mem, 1.0),
            cpi_exe=max(self.cpi_exe, 1e-12),
            overlap_ratio_cm=self.overlap_ratio_cm,
            eta_combined=self.eta_combined,
            hit_time1=max(self.l1.hit_time, 1e-12),
            hit_concurrency1=self.l1.hit_concurrency,
        )

    @property
    def apc1(self) -> float:
        """L1 accesses per memory-active cycle (Fig. 6 quantity)."""
        return self.l1.apc

    @property
    def apc2(self) -> float:
        """L2 accesses per L2-active cycle (Fig. 7 quantity)."""
        return self.l2.apc

    @property
    def ipc(self) -> float:
        """Achieved instructions per cycle."""
        return safe_ratio(1.0, self.cpi)

    # -- serialization (checkpoint journal) -------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable form, round-tripped by :meth:`from_dict`.

        Used by the evaluation runtime's checkpoint journal so interrupted
        explorations resume without re-simulating completed design points.
        """
        data = {
            "cpi": self.cpi,
            "cpi_exe": self.cpi_exe,
            "f_mem": self.f_mem,
            "n_instructions": self.n_instructions,
            "mr1_conventional": self.mr1_conventional,
            "mr1_request": self.mr1_request,
            "mr2_conventional": self.mr2_conventional,
            "mr2_request": self.mr2_request,
            "mr3_conventional": self.mr3_conventional,
            "mr3_request": self.mr3_request,
            "l1": self.l1.to_dict(),
            "l2": self.l2.to_dict(),
            "mem": self.mem.to_dict(),
        }
        if self.l3 is not None:
            data["l3"] = self.l3.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "HierarchyStats":
        """Inverse of :meth:`to_dict`."""
        layers = {
            name: LayerMeasurement.from_dict(data[name]) for name in ("l1", "l2", "mem")
        }
        l3 = LayerMeasurement.from_dict(data["l3"]) if "l3" in data else None
        scalars = {
            k: data[k]
            for k in (
                "cpi", "cpi_exe", "f_mem", "n_instructions",
                "mr1_conventional", "mr1_request",
                "mr2_conventional", "mr2_request",
                "mr3_conventional", "mr3_request",
            )
        }
        return cls(l3=l3, **layers, **scalars)


@satisfies("stats_layers", "lpmr_definitions", "report_bounds")
def measure_hierarchy(result: SimulationResult, cpi_exe: float) -> HierarchyStats:
    """Run the C-AMAT analyzer over a simulation's records."""
    acc = result.accesses
    l1 = measure_layer(acc.l1_hit_start, acc.l1_hit_end, acc.l1_miss_start, acc.l1_miss_end)
    l2 = measure_layer(acc.l2_hit_start, acc.l2_hit_end, acc.l2_miss_start, acc.l2_miss_end)
    mem = measure_layer(
        acc.mem_start, acc.mem_end,
        acc.mem_start, acc.mem_start,  # main memory has no miss phase
    ) if acc.n_mem_accesses else measure_layer([], [], [], [])
    l3 = None
    mr2_request = acc.mem_per_l2_access
    mr3_conventional = 0.0
    mr3_request = 0.0
    if acc.has_l3:
        l3 = measure_layer(
            acc.l3_hit_start, acc.l3_hit_end, acc.l3_miss_start, acc.l3_miss_end
        ) if acc.n_l3_accesses else measure_layer([], [], [], [])
        mr2_request = acc.l3_per_l2_access
        mr3_conventional = acc.l3_miss_rate
        mr3_request = acc.mem_per_l3_access
    n_instr = result.instructions.n_instructions
    n_mem_ops = acc.n_accesses
    return HierarchyStats(
        l1=l1,
        l2=l2,
        mem=mem,
        cpi=result.cpi,
        cpi_exe=cpi_exe,
        f_mem=safe_ratio(n_mem_ops, n_instr),
        n_instructions=n_instr,
        mr1_conventional=acc.l1_miss_rate,
        mr1_request=acc.l2_per_l1_access,
        mr2_conventional=acc.l2_miss_rate,
        mr2_request=mr2_request,
        l3=l3,
        mr3_conventional=mr3_conventional,
        mr3_request=mr3_request,
    )


def simulate_and_measure(
    config: MachineConfig,
    trace: Trace,
    *,
    seed: int = 0,
    warm: bool = True,
) -> tuple[SimulationResult, HierarchyStats]:
    """Convenience path: perfect run for CPI_exe, real run, analyzer pass.

    ``warm=True`` touches the trace's addresses functionally first, so the
    measured window reflects steady-state locality rather than cold-start
    compulsory misses (the paper samples long-running SPEC regions).
    """
    perfect_sim = HierarchySimulator(config, seed=seed)
    perfect = perfect_sim.run(trace, perfect=True)

    sim = HierarchySimulator(config, seed=seed)
    if warm:
        sim.warm_caches(trace)
    result = sim.run(trace)
    stats = measure_hierarchy(result, cpi_exe=perfect.cpi)
    return result, stats


def simulate_and_measure_batch(
    configs: "list[MachineConfig]",
    trace: Trace,
    *,
    seed: int = 0,
    warm: bool = True,
    require_eligible: bool = False,
) -> "list[tuple[SimulationResult, HierarchyStats]]":
    """:func:`simulate_and_measure` for N configs in two batch kernel calls.

    Batch-eligible configs run on the vectorized kernel (one perfect pass
    for CPI_exe, one warmed real pass — the same fresh-simulator semantics
    as the scalar path, so results are bit-identical to it); ineligible
    configs fall back to per-config scalar evaluation.  Results come back
    in input order.  With ``require_eligible=True`` an ineligible config
    raises :class:`~repro.runtime.errors.ConfigError` instead of falling
    back (the ``engine="batch"`` contract).
    """
    from repro.sim.batch import BatchHierarchySimulator, partition_eligible

    eligible, fallback = partition_eligible(configs)
    if require_eligible and fallback:
        # Delegate the error (with names) to the batch constructor's gate.
        BatchHierarchySimulator([configs[i] for i in fallback], seed=seed)
    out: "list[tuple[SimulationResult, HierarchyStats] | None]" = [None] * len(configs)
    if eligible:
        batch_configs = [configs[i] for i in eligible]
        perfect = BatchHierarchySimulator(batch_configs, seed=seed).run(
            trace, perfect=True
        )
        sim = BatchHierarchySimulator(batch_configs, seed=seed)
        if warm:
            sim.warm_caches(trace)
        results = sim.run(trace)
        for idx, pres, res in zip(eligible, perfect, results):
            out[idx] = (res, measure_hierarchy(res, cpi_exe=pres.cpi))
    for idx in fallback:
        out[idx] = simulate_and_measure(
            configs[idx], trace, seed=seed, warm=warm
        )
    return out  # type: ignore[return-value]
