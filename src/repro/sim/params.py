"""Machine configuration for the memory-hierarchy timing simulator.

The paper's Case Study I explores six architecture parameters (Table I):
pipeline issue width, instruction-window (IW) size, ROB size, L1 cache port
number, MSHR count, and L2 cache interleaving.  Those six — plus the cache
geometries and latencies the paper holds fixed — make up
:class:`MachineConfig`.  The five Table I configurations are provided as
:data:`TABLE1_CONFIGS` presets.

Parameter semantics in this simulator:

``issue_width``
    Maximum instructions dispatched *and* retired per cycle.
``iw_size``
    Instruction-window capacity interpreted as the maximum number of
    in-flight memory requests the core sustains (load/store-queue bound);
    together with the L1 MSHRs it limits memory-level parallelism.
``rob_size``
    Maximum dispatched-but-not-retired instructions; instruction *i* cannot
    dispatch before instruction *i - rob_size* retires.
``l1_ports``
    Number of simultaneous L1 accesses that can begin; each access occupies
    a port for the full hit time (non-pipelined default) or for one cycle
    when ``l1_pipelined`` is set.
``mshr_count``
    Non-blocking-cache miss registers at L1, with primary/secondary miss
    coalescing per cache block.
``l2_banks``
    L2 interleaving: independently schedulable L2 banks (block-address
    interleaved).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace

from repro.runtime.errors import ConfigError
from repro.util.validation import check_int, check_power_of_two

__all__ = [
    "CacheGeometry",
    "DRAMTiming",
    "CoreParams",
    "MachineConfig",
    "TABLE1_CONFIGS",
    "table1_config",
    "DEFAULT_MACHINE",
]


@dataclass(frozen=True)
class CacheGeometry:
    """Size/shape of one cache level.

    ``size_bytes`` must equal ``line_bytes * associativity * n_sets`` for a
    power-of-two number of sets (checked at construction).
    """

    size_bytes: int
    line_bytes: int = 64
    associativity: int = 8
    replacement: str = "lru"

    def __post_init__(self) -> None:
        check_power_of_two("size_bytes", self.size_bytes)
        check_power_of_two("line_bytes", self.line_bytes)
        check_int("associativity", self.associativity, minimum=1)
        if self.size_bytes < self.line_bytes * self.associativity:
            raise ValueError(
                f"cache of {self.size_bytes} B cannot hold {self.associativity} "
                f"ways of {self.line_bytes} B lines"
            )
        if self.replacement not in ("lru", "fifo", "random", "plru"):
            raise ValueError(f"unknown replacement policy: {self.replacement!r}")
        if self.n_sets * self.line_bytes * self.associativity != self.size_bytes:
            raise ValueError(
                "size_bytes must be line_bytes * associativity * (power-of-two sets); "
                f"got size={self.size_bytes}, line={self.line_bytes}, "
                f"assoc={self.associativity}"
            )

    @property
    def n_sets(self) -> int:
        """Number of sets (power of two by construction)."""
        return self.size_bytes // (self.line_bytes * self.associativity)

    @property
    def offset_bits(self) -> int:
        """log2 of the line size."""
        return self.line_bytes.bit_length() - 1


@dataclass(frozen=True)
class DRAMTiming:
    """Simplified DRAMSim2-style main-memory timing, in CPU cycles.

    Three access classes per bank: row-buffer *hit* (``t_cas``), row *closed*
    (``t_rcd + t_cas``), and row *conflict* (``t_rp + t_rcd + t_cas``).  Data
    occupies the bank for ``t_burst`` after the access latency; the request
    and reply each pay ``t_bus`` on the channel.
    """

    n_banks: int = 8
    t_cas: int = 20
    t_rcd: int = 14
    t_rp: int = 14
    t_burst: int = 4
    t_bus: int = 9
    row_bytes: int = 2048

    def __post_init__(self) -> None:
        check_power_of_two("n_banks", self.n_banks)
        check_int("t_cas", self.t_cas, minimum=1)
        check_int("t_rcd", self.t_rcd, minimum=0)
        check_int("t_rp", self.t_rp, minimum=0)
        check_int("t_burst", self.t_burst, minimum=1)
        check_int("t_bus", self.t_bus, minimum=0)
        check_power_of_two("row_bytes", self.row_bytes)

    @property
    def row_hit_latency(self) -> int:
        """Bank latency when the row buffer already holds the row."""
        return self.t_cas

    @property
    def row_closed_latency(self) -> int:
        """Bank latency when the bank is precharged (no open row)."""
        return self.t_rcd + self.t_cas

    @property
    def row_conflict_latency(self) -> int:
        """Bank latency when a different row is open (precharge first)."""
        return self.t_rp + self.t_rcd + self.t_cas


@dataclass(frozen=True)
class CoreParams:
    """Out-of-order core parameters (the CPU-side Table I knobs)."""

    issue_width: int = 4
    iw_size: int = 32
    rob_size: int = 32

    def __post_init__(self) -> None:
        check_int("issue_width", self.issue_width, minimum=1)
        check_int("iw_size", self.iw_size, minimum=1)
        check_int("rob_size", self.rob_size, minimum=1)


@dataclass(frozen=True)
class MachineConfig:
    """A complete simulated machine: core + two cache levels + DRAM.

    The six Case Study I knobs are ``core.issue_width``, ``core.iw_size``,
    ``core.rob_size``, ``l1_ports``, ``mshr_count`` and ``l2_banks``.
    """

    name: str = "default"
    core: CoreParams = field(default_factory=CoreParams)
    l1: CacheGeometry = field(default_factory=lambda: CacheGeometry(32 * 1024))
    #: The default LLC is deliberately small (256 KB): the whole model is
    #: scaled down so that 10^5-10^6-access traces exercise all three layers
    #: (L1, LLC, DRAM) the way the paper's 10^10-instruction SPEC samples
    #: exercised a 2 MB LLC.  See DESIGN.md ("Substitutions").
    l2: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(256 * 1024, associativity=16)
    )
    dram: DRAMTiming = field(default_factory=DRAMTiming)
    l1_hit_time: int = 3
    l2_hit_time: int = 8
    l1_ports: int = 1
    #: Non-pipelined by default: a port is occupied for the full hit time,
    #: so the L1 port count is a true supply-rate knob (the Table I walk's
    #: B->C jump comes from the second port unlocking L1 bandwidth).
    l1_pipelined: bool = False
    mshr_count: int = 4
    l2_mshr_count: int = 16
    l2_banks: int = 4
    l2_pipelined: bool = False
    l1_to_l2_delay: int = 1
    l2_to_mem_delay: int = 2
    #: Optional L1 stream/stride prefetcher (see repro.sim.prefetch); None
    #: disables prefetching (the paper's baseline machine).
    prefetch: "object | None" = None
    #: Optional selective-replacement stream bypass at the L1 (a
    #: repro.sim.prefetch.BypassConfig); the paper's "selective cache
    #: replacement" future-work mechanism.  None disables it.
    l1_bypass: "object | None" = None
    #: Optional third cache level between the L2 and main memory ("the
    #: extension to additional cache levels is straightforward", Sec. III).
    #: None keeps the paper's two-level hierarchy.
    l3: CacheGeometry | None = None
    l3_hit_time: int = 20
    l3_banks: int = 8
    l3_mshr_count: int = 32
    l3_pipelined: bool = False
    l2_to_l3_delay: int = 2

    def __post_init__(self) -> None:
        check_int("l1_hit_time", self.l1_hit_time, minimum=1)
        check_int("l2_hit_time", self.l2_hit_time, minimum=1)
        check_int("l1_ports", self.l1_ports, minimum=1)
        check_int("mshr_count", self.mshr_count, minimum=1)
        check_int("l2_mshr_count", self.l2_mshr_count, minimum=1)
        check_power_of_two("l2_banks", self.l2_banks)
        check_int("l1_to_l2_delay", self.l1_to_l2_delay, minimum=0)
        check_int("l2_to_mem_delay", self.l2_to_mem_delay, minimum=0)
        if self.l1.line_bytes != self.l2.line_bytes:
            raise ValueError("L1 and L2 must share a line size in this model")
        if self.l3 is not None:
            check_int("l3_hit_time", self.l3_hit_time, minimum=1)
            check_power_of_two("l3_banks", self.l3_banks)
            check_int("l3_mshr_count", self.l3_mshr_count, minimum=1)
            check_int("l2_to_l3_delay", self.l2_to_l3_delay, minimum=0)
            if self.l3.line_bytes != self.l1.line_bytes:
                raise ValueError("L3 must share the hierarchy's line size")

    def with_(self, **changes) -> "MachineConfig":
        """Copy with selected fields replaced (core fields via ``core=``)."""
        return replace(self, **changes)

    def with_knobs(
        self,
        *,
        issue_width: int | None = None,
        iw_size: int | None = None,
        rob_size: int | None = None,
        l1_ports: int | None = None,
        mshr_count: int | None = None,
        l2_banks: int | None = None,
        l1_size_bytes: int | None = None,
        name: str | None = None,
    ) -> "MachineConfig":
        """Copy with any of the Case Study knobs replaced."""
        core = CoreParams(
            issue_width=issue_width if issue_width is not None else self.core.issue_width,
            iw_size=iw_size if iw_size is not None else self.core.iw_size,
            rob_size=rob_size if rob_size is not None else self.core.rob_size,
        )
        l1 = self.l1
        if l1_size_bytes is not None:
            l1 = replace(self.l1, size_bytes=l1_size_bytes)
        return replace(
            self,
            name=name if name is not None else self.name,
            core=core,
            l1=l1,
            l1_ports=l1_ports if l1_ports is not None else self.l1_ports,
            mshr_count=mshr_count if mshr_count is not None else self.mshr_count,
            l2_banks=l2_banks if l2_banks is not None else self.l2_banks,
        )

    def knob_summary(self) -> dict[str, int]:
        """The six Table I knobs of this configuration."""
        return {
            "issue_width": self.core.issue_width,
            "iw_size": self.core.iw_size,
            "rob_size": self.core.rob_size,
            "l1_ports": self.l1_ports,
            "mshr_count": self.mshr_count,
            "l2_banks": self.l2_banks,
        }

    def cache_key(self) -> str:
        """Stable identity string over every timing-relevant parameter.

        Two configurations with equal keys simulate identically, regardless
        of their display ``name`` — this is what measurement caches and
        checkpoint journals must key on (keying on ``name`` lets two
        configurations sharing a label alias each other's results).
        """
        fields = asdict(self)
        fields.pop("name")
        # Non-dataclass extension objects (prefetcher, bypass) fall back to
        # their reprs, which the sim modules keep parameter-complete.
        return repr(sorted(fields.items()))


DEFAULT_MACHINE = MachineConfig()

# Table I of the paper: five configurations with incremental parallelism.
_TABLE1_KNOBS: dict[str, dict[str, int]] = {
    "A": dict(issue_width=4, iw_size=32, rob_size=32, l1_ports=1, mshr_count=4, l2_banks=4),
    "B": dict(issue_width=4, iw_size=64, rob_size=64, l1_ports=1, mshr_count=8, l2_banks=8),
    "C": dict(issue_width=6, iw_size=64, rob_size=64, l1_ports=2, mshr_count=16, l2_banks=8),
    "D": dict(issue_width=8, iw_size=128, rob_size=128, l1_ports=4, mshr_count=16, l2_banks=8),
    "E": dict(issue_width=8, iw_size=96, rob_size=96, l1_ports=4, mshr_count=16, l2_banks=8),
}


def table1_config(label: str, base: MachineConfig = DEFAULT_MACHINE) -> MachineConfig:
    """The Table I configuration *label* (``"A"`` .. ``"E"``)."""
    try:
        knobs = _TABLE1_KNOBS[label.upper()]
    except KeyError:
        raise ConfigError(f"unknown Table I configuration {label!r}; use A..E") from None
    return base.with_knobs(name=label.upper(), **knobs)


TABLE1_CONFIGS: dict[str, MachineConfig] = {
    label: table1_config(label) for label in _TABLE1_KNOBS
}
