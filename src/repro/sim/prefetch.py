"""Stream/stride prefetcher for the L1 (an optional engine component).

The paper situates LPM above a "toolkit or technique pool" of specific
memory optimizations (Hennessy & Patterson's sixteen mechanisms); hardware
prefetching is the classic member that trades bandwidth for latency —
converting demand pure misses into hits (lower pMR) at the cost of extra
L2/DRAM traffic.  This module provides a region-based stride prefetcher in
the style of hardware stream prefetchers:

* accesses are tracked per aligned region (default 4 KB); a region entry
  holds the last block touched and the current stride candidate;
* once the same block stride repeats (``confirm_after`` matches), the
  entry is *trained* and every further matching access issues prefetches
  for the next ``degree`` blocks at ``distance`` strides ahead;
* the engine turns candidates into real L2/DRAM traffic through the same
  bank/row-buffer schedulers demand misses use, so prefetching consumes —
  and can exhaust — downstream supply, exactly the tension the LPM model
  arbitrates.

Usefulness accounting (issued / useful / late) feeds the ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_int, check_power_of_two

__all__ = ["PrefetchConfig", "StridePrefetcher", "BypassConfig", "StreamDetector"]


@dataclass(frozen=True)
class PrefetchConfig:
    """Stride-prefetcher parameters.

    ``degree`` blocks are requested per trigger, starting ``distance``
    strides ahead of the current access; at most ``max_outstanding``
    prefetches may be in flight (the prefetch queue depth).
    """

    degree: int = 2
    distance: int = 1
    region_bytes: int = 4096
    table_size: int = 64
    confirm_after: int = 2
    max_outstanding: int = 8

    def __post_init__(self) -> None:
        check_int("degree", self.degree, minimum=1)
        check_int("distance", self.distance, minimum=1)
        check_power_of_two("region_bytes", self.region_bytes)
        check_int("table_size", self.table_size, minimum=1)
        check_int("confirm_after", self.confirm_after, minimum=1)
        check_int("max_outstanding", self.max_outstanding, minimum=1)


class _RegionEntry:
    __slots__ = ("last_block", "stride", "confidence")

    def __init__(self, block: int) -> None:
        self.last_block = block
        self.stride = 0
        self.confidence = 0


class StridePrefetcher:
    """Region-keyed stride detector producing prefetch block candidates."""

    def __init__(self, config: PrefetchConfig, line_bytes: int = 64) -> None:
        self.config = config
        self._region_shift = config.region_bytes.bit_length() - 1
        self._line_shift = line_bytes.bit_length() - 1
        self._table: dict[int, _RegionEntry] = {}
        self.issued = 0
        self.useful = 0
        self.late = 0
        self.trained_triggers = 0

    def observe(self, address: int) -> list[int]:
        """Record a demand access; return block numbers to prefetch."""
        block = address >> self._line_shift
        region = address >> self._region_shift
        entry = self._table.get(region)
        if entry is None:
            if len(self._table) >= self.config.table_size:
                # Evict the oldest region entry (dict preserves insertion).
                self._table.pop(next(iter(self._table)))
            self._table[region] = _RegionEntry(block)
            return []

        stride = block - entry.last_block
        entry.last_block = block
        if stride == 0:
            return []
        if stride == entry.stride:
            if entry.confidence < self.config.confirm_after:
                entry.confidence += 1
        else:
            entry.stride = stride
            entry.confidence = 1
            return []
        if entry.confidence < self.config.confirm_after:
            return []

        self.trained_triggers += 1
        base = block + stride * self.config.distance
        return [base + k * stride for k in range(self.config.degree)]

    def reset(self) -> None:
        """Clear training state and statistics."""
        self._table.clear()
        self.issued = 0
        self.useful = 0
        self.late = 0
        self.trained_triggers = 0

    @property
    def accuracy(self) -> float:
        """Useful prefetches over issued (0 when none issued)."""
        return self.useful / self.issued if self.issued else 0.0


@dataclass(frozen=True)
class BypassConfig:
    """Selective-replacement (stream bypass) parameters.

    The paper lists "selective cache replacement" among the LPM-enabling
    future-work mechanisms: blocks belonging to detected streams carry no
    reuse, so inserting them into the L1 only evicts useful lines.  With
    bypass enabled, fills whose region shows a confirmed stride skip L1
    allocation — data still returns to the core with normal timing and the
    L2 retains the line.
    """

    region_bytes: int = 4096
    table_size: int = 64
    confirm_after: int = 3

    def __post_init__(self) -> None:
        check_power_of_two("region_bytes", self.region_bytes)
        check_int("table_size", self.table_size, minimum=1)
        check_int("confirm_after", self.confirm_after, minimum=1)


class StreamDetector:
    """Region-keyed stride confirmation used by the bypass policy.

    Same training structure as the prefetcher's table, but consumed as a
    predicate: :meth:`observe_and_classify` returns True when the access
    belongs to a confirmed stream (so its fill should bypass the L1).
    """

    def __init__(self, config: BypassConfig, line_bytes: int = 64) -> None:
        self.config = config
        self._region_shift = config.region_bytes.bit_length() - 1
        self._line_shift = line_bytes.bit_length() - 1
        self._table: dict[int, _RegionEntry] = {}
        self.bypassed = 0
        self.observed = 0

    def observe_and_classify(self, address: int) -> bool:
        """Train on one access; True if it belongs to a confirmed stream."""
        self.observed += 1
        block = address >> self._line_shift
        region = address >> self._region_shift
        entry = self._table.get(region)
        if entry is None:
            if len(self._table) >= self.config.table_size:
                self._table.pop(next(iter(self._table)))
            self._table[region] = _RegionEntry(block)
            return False
        stride = block - entry.last_block
        entry.last_block = block
        if stride == 0:
            # Re-touch of the same line: definitely reused, not a stream.
            entry.confidence = 0
            return False
        if stride == entry.stride:
            if entry.confidence < self.config.confirm_after:
                entry.confidence += 1
        else:
            entry.stride = stride
            entry.confidence = 1
            return False
        streaming = entry.confidence >= self.config.confirm_after
        if streaming:
            self.bypassed += 1
        return streaming

    @property
    def bypass_rate(self) -> float:
        """Fraction of observed accesses classified as streaming."""
        return self.bypassed / self.observed if self.observed else 0.0

    def reset(self) -> None:
        """Clear training state and statistics."""
        self._table.clear()
        self.bypassed = 0
        self.observed = 0
