"""Timed multicore co-execution with a genuinely shared L2 and DRAM.

Case Study II's headline numbers use an analytic shared-L2 contention
model (:mod:`repro.sched.contention`) — the same information NUCA-SA has.
This module provides the ground truth to validate it against: N traces
executing on N cores whose L2 bank schedulers, L2 MSHR file, L2 functional
contents and DRAM banks are *one shared set of objects*, so co-runners
contend for real.

Scheduling discipline: each core owns a private
:class:`~repro.sim.engine.HierarchySimulator` (L1, ports, MSHRs, fill
queues) whose L2/DRAM components are replaced by the shared instances.
Execution proceeds in barrier-synchronized *cycle windows* of ``quantum``
cycles: every active core executes within the current window (its pipeline
state resuming across windows via the engine's ``resume`` support) before
any core enters the next one, and the per-window service order rotates.
Cross-core ordering error at shared resources is therefore bounded by the
window length — shrink ``quantum`` for interleaving fidelity, grow it for
speed.  A single core run through this machinery reproduces its solo
timing bit-exactly (see ``tests/sim/test_multicore.py``).

Fairness caveat: cores that finish their trace stop producing load, so the
tail of a co-run is progressively less contended (as in real multiprogram
measurement up to the first completion).  Metrics here follow the common
"first N instructions of each application" convention: every trace
contributes its full instruction count, and per-core IPC is measured over
each core's own busy span.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.engine import HierarchySimulator, SimulationResult
from repro.sim.params import MachineConfig
from repro.sim.stats import HierarchyStats, measure_hierarchy
from repro.util.validation import check_int
from repro.workloads.trace import Trace

__all__ = ["CoRunResult", "MulticoreSimulator"]


@dataclass
class CoRunResult:
    """Per-core outcomes of one timed co-run."""

    core_results: list[SimulationResult]
    core_stats: list[HierarchyStats]
    quantum: int

    @property
    def n_cores(self) -> int:
        """Number of co-running cores."""
        return len(self.core_results)

    def ipcs(self) -> list[float]:
        """Per-core achieved IPC over each core's busy span."""
        return [s.ipc for s in self.core_stats]

    def total_cycles(self) -> int:
        """Wall-clock cycles until the last core finished."""
        return max(
            int(r.instructions.retire.max()) if r.instructions.n_instructions else 0
            for r in self.core_results
        )


class MulticoreSimulator:
    """Run one trace per core against a shared L2/DRAM back end.

    Parameters
    ----------
    configs:
        One :class:`MachineConfig` per core (heterogeneous L1s allowed).
        L2/L3 geometry and DRAM timing must agree across cores — the
        shared components are built from core 0's configuration.
    quantum:
        Cycles per barrier-synchronized window (cross-core interleaving
        granularity).
    """

    def __init__(
        self,
        configs: "list[MachineConfig]",
        *,
        quantum: int = 250,
        seed: int = 0,
    ) -> None:
        if not configs:
            raise ValueError("need at least one core configuration")
        check_int("quantum", quantum, minimum=1)
        base = configs[0]
        for i, cfg in enumerate(configs[1:], start=1):
            if cfg.l2 != base.l2 or cfg.dram != base.dram or cfg.l3 != base.l3:
                raise ValueError(
                    f"core {i} disagrees with core 0 on shared L2/L3/DRAM "
                    "configuration"
                )
        self.configs = list(configs)
        self.quantum = quantum
        self.seed = seed
        self.cores = [
            HierarchySimulator(cfg, seed=seed + 17 * i)
            for i, cfg in enumerate(configs)
        ]
        # Share the back end: every core's engine points at core 0's L2,
        # L2 MSHRs, L2 bank scheduler, fill queue, DRAM (and L3 if any).
        # Shared MSHR files must run out-of-order: the cores' local clocks
        # are only quantum-synchronized, so a global in-order clamp would
        # let a fast core's timestamps stall everyone else.
        from repro.sim.mshr import MSHRFile

        shared = self.cores[0]
        shared.l2_mshrs = MSHRFile(base.l2_mshr_count, in_order=False)
        if shared.l3_cache is not None:
            shared.l3_mshrs = MSHRFile(base.l3_mshr_count, in_order=False)
        for core in self.cores[1:]:
            core.l2_cache = shared.l2_cache
            core.l2_banks = shared.l2_banks
            core.l2_mshrs = shared.l2_mshrs
            core._l2_fills = shared._l2_fills
            core.dram = shared.dram
            if shared.l3_cache is not None:
                core.l3_cache = shared.l3_cache
                core.l3_banks = shared.l3_banks
                core.l3_mshrs = shared.l3_mshrs
                core._l3_fills = shared._l3_fills

    def warm_caches(self, traces: "list[Trace]") -> None:
        """Warm private L1s with their own trace, the shared L2 with all."""
        for core, trace in zip(self.cores, traces):
            core.l1_cache.warm_lookup_array(trace.memory_addresses)
        shared_l2 = self.cores[0].l2_cache
        for trace in traces:
            shared_l2.warm_lookup_array(trace.memory_addresses)

    def run(self, traces: "list[Trace]") -> CoRunResult:
        """Co-execute the traces; returns per-core records and measurements.

        Per-core ``CPI_exe`` for the stats is measured by a private
        perfect-cache run of each trace (contention-free compute demand).
        """
        if len(traces) != len(self.cores):
            raise ValueError(
                f"need one trace per core: {len(traces)} traces for "
                f"{len(self.cores)} cores"
            )
        n_cores = len(self.cores)
        positions = [0] * n_cores
        clocks = [0] * n_cores
        chunks: list[list[SimulationResult]] = [[] for _ in range(n_cores)]

        # Barrier-synchronized cycle windows: every core executes within
        # [window_start, window_end) before anyone proceeds, so shared-
        # resource reservations never run more than ~one window (plus one
        # in-flight miss) ahead of any co-runner.
        window_start = 0
        window_no = 0
        active = {i for i in range(n_cores) if traces[i].n_instructions > 0}
        while active:
            window_end = window_start + self.quantum
            # Rotate the per-window service order: within a window the
            # cores are simulated sequentially, so a fixed order would
            # systematically favour the first core at shared resources.
            order = sorted(active)
            rot = window_no % max(len(order), 1)
            for core_idx in order[rot:] + order[:rot]:
                if clocks[core_idx] >= window_end:
                    continue
                trace = traces[core_idx]
                lo = positions[core_idx]
                # Bounded lookahead: at most issue_width instructions can
                # dispatch per cycle, so a window never consumes more than
                # quantum * issue_width of the trace (slicing the whole
                # tail each window would be quadratic in trace length).
                max_consume = self.quantum * self.configs[core_idx].core.issue_width
                hi = min(lo + max_consume + 64, trace.n_instructions)
                window = trace.slice(lo, hi)
                result = self.cores[core_idx].run(
                    window,
                    start_cycle=max(clocks[core_idx], window_start),
                    stop_cycle=window_end,
                    resume=positions[core_idx] > 0,
                )
                executed = result.instructions_executed
                if executed:
                    chunks[core_idx].append(result)
                    positions[core_idx] += executed
                    # The core's clock is where dispatch stopped, not where
                    # the last in-flight op retires: with resumed pipeline
                    # state the next window overlaps those completions.
                    clocks[core_idx] = max(
                        int(result.instructions.dispatch.max()), window_end
                    )
                else:
                    clocks[core_idx] = window_end
                if positions[core_idx] >= trace.n_instructions:
                    active.discard(core_idx)
            window_start = window_end
            window_no += 1

        core_results = [
            _merge_chunks(self.configs[i], traces[i].name, chunks[i])
            for i in range(n_cores)
        ]
        core_stats = []
        for i, result in enumerate(core_results):
            perfect = HierarchySimulator(self.configs[i], seed=self.seed).run(
                traces[i], perfect=True
            )
            core_stats.append(measure_hierarchy(result, cpi_exe=perfect.cpi))
        return CoRunResult(
            core_results=core_results, core_stats=core_stats, quantum=self.quantum
        )


def _concat(arrays: "list[np.ndarray]") -> np.ndarray:
    return np.concatenate(arrays) if arrays else np.zeros(0, dtype=np.int64)


def _merge_chunks(
    config: MachineConfig, trace_name: str, chunks: "list[SimulationResult]"
) -> SimulationResult:
    """Stitch a core's per-quantum results into one SimulationResult.

    Row indices into the L2/memory tables are per-chunk, so they are
    rebased by the running row counts while concatenating.
    """
    from repro.sim.records import AccessRecords, InstructionRecords

    if not chunks:
        empty = np.zeros(0, dtype=np.int64)
        empty_b = np.zeros(0, dtype=bool)
        return SimulationResult(
            config=config,
            trace_name=trace_name,
            accesses=AccessRecords(
                l1_hit_start=empty, l1_hit_end=empty, l1_miss_start=empty,
                l1_miss_end=empty, l1_is_miss=empty_b, l1_is_secondary=empty_b,
                complete=empty, l2_index=empty,
                l2_hit_start=empty, l2_hit_end=empty, l2_miss_start=empty,
                l2_miss_end=empty, l2_is_miss=empty_b, l2_is_secondary=empty_b,
                mem_index=empty, mem_start=empty, mem_end=empty,
            ),
            instructions=InstructionRecords(
                dispatch=empty, complete=empty, retire=empty, is_mem=empty_b
            ),
        )

    l2_offsets, mem_offsets, l3_offsets = [], [], []
    l2_total = mem_total = l3_total = 0
    for chunk in chunks:
        l2_offsets.append(l2_total)
        mem_offsets.append(mem_total)
        l3_offsets.append(l3_total)
        l2_total += chunk.accesses.n_l2_accesses
        mem_total += chunk.accesses.n_mem_accesses
        l3_total += chunk.accesses.n_l3_accesses
    has_l3 = any(c.accesses.has_l3 for c in chunks)

    def rebased(attr: str, offsets: "list[int]") -> np.ndarray:
        parts = []
        for chunk, off in zip(chunks, offsets):
            idx = getattr(chunk.accesses, attr).copy()
            idx[idx >= 0] += off
            parts.append(idx)
        return _concat(parts)

    acc = AccessRecords(
        l1_hit_start=_concat([c.accesses.l1_hit_start for c in chunks]),
        l1_hit_end=_concat([c.accesses.l1_hit_end for c in chunks]),
        l1_miss_start=_concat([c.accesses.l1_miss_start for c in chunks]),
        l1_miss_end=_concat([c.accesses.l1_miss_end for c in chunks]),
        l1_is_miss=_concat([c.accesses.l1_is_miss for c in chunks]),
        l1_is_secondary=_concat([c.accesses.l1_is_secondary for c in chunks]),
        complete=_concat([c.accesses.complete for c in chunks]),
        l2_index=rebased("l2_index", l2_offsets),
        l2_hit_start=_concat([c.accesses.l2_hit_start for c in chunks]),
        l2_hit_end=_concat([c.accesses.l2_hit_end for c in chunks]),
        l2_miss_start=_concat([c.accesses.l2_miss_start for c in chunks]),
        l2_miss_end=_concat([c.accesses.l2_miss_end for c in chunks]),
        l2_is_miss=_concat([c.accesses.l2_is_miss for c in chunks]),
        l2_is_secondary=_concat([c.accesses.l2_is_secondary for c in chunks]),
        mem_index=rebased("mem_index", mem_offsets),
        mem_start=_concat([c.accesses.mem_start for c in chunks]),
        mem_end=_concat([c.accesses.mem_end for c in chunks]),
        l3_index=rebased("l3_index", l3_offsets) if has_l3 else np.zeros(0, np.int64),
        l3_hit_start=_concat([c.accesses.l3_hit_start for c in chunks]),
        l3_hit_end=_concat([c.accesses.l3_hit_end for c in chunks]),
        l3_miss_start=_concat([c.accesses.l3_miss_start for c in chunks]),
        l3_miss_end=_concat([c.accesses.l3_miss_end for c in chunks]),
        l3_is_miss=_concat([c.accesses.l3_is_miss for c in chunks]),
        l3_is_secondary=_concat([c.accesses.l3_is_secondary for c in chunks]),
        l3_mem_index=rebased("l3_mem_index", mem_offsets) if has_l3
        else np.zeros(0, np.int64),
    )
    instructions = InstructionRecords(
        dispatch=_concat([c.instructions.dispatch for c in chunks]),
        complete=_concat([c.instructions.complete for c in chunks]),
        retire=_concat([c.instructions.retire for c in chunks]),
        is_mem=_concat([c.instructions.is_mem for c in chunks]),
    )
    stats: dict = dict(chunks[-1].component_stats)
    return SimulationResult(
        config=config,
        trace_name=trace_name,
        accesses=acc,
        instructions=instructions,
        component_stats=stats,
    )
