"""The Case Study I design space: six architecture knobs with value ladders.

The paper explores pipeline issue width, IW size, ROB size, L1 port count,
MSHR count and L2 interleaving — "provided that each parameter can be set
with 10 different values, the design space size is 10^6", making exhaustive
search impractical and motivating LPM-guided exploration.

A :class:`DesignPoint` is an assignment of one ladder value per knob;
:class:`DesignSpace` knows the ladders, converts points to simulator
:class:`~repro.sim.params.MachineConfig`\\ s, enumerates upgrade/downgrade
neighbours, and prices points with a simple hardware-cost metric (used by
the over-provision-trimming step to prefer cheaper matched configurations).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.runtime.errors import ConfigError
from repro.sim.params import MachineConfig

__all__ = ["DesignPoint", "DesignSpace", "DEFAULT_LADDERS", "L1_KNOBS", "L2_KNOBS"]

#: Default value ladders per knob (ascending parallelism).
DEFAULT_LADDERS: dict[str, tuple[int, ...]] = {
    "issue_width": (2, 4, 6, 8),
    "iw_size": (16, 32, 48, 64, 96, 128, 192, 256),
    "rob_size": (16, 32, 48, 64, 96, 128, 192, 256),
    "l1_ports": (1, 2, 4, 8),
    "mshr_count": (2, 4, 8, 16, 32),
    "l2_banks": (2, 4, 8, 16),
}

#: Knobs that raise the L1 layer's supply capability (hit and pure-miss
#: concurrency, latency hiding): the Case II / Case I "optimize L1 layer"
#: action upgrades these.
L1_KNOBS: tuple[str, ...] = ("l1_ports", "mshr_count", "iw_size", "rob_size")

#: Knobs that raise the L2 layer's supply capability.
L2_KNOBS: tuple[str, ...] = ("l2_banks",)

#: Relative silicon cost per unit of each knob, used to rank deprovision
#: candidates (arbitrary but fixed; only the ordering matters).
_KNOB_COST: dict[str, float] = {
    "issue_width": 8.0,
    "iw_size": 0.5,
    "rob_size": 0.5,
    "l1_ports": 12.0,
    "mshr_count": 2.0,
    "l2_banks": 4.0,
}


@dataclass(frozen=True)
class DesignPoint:
    """One assignment of the six knobs (values, not ladder indices)."""

    issue_width: int
    iw_size: int
    rob_size: int
    l1_ports: int
    mshr_count: int
    l2_banks: int

    def as_dict(self) -> dict[str, int]:
        """Knob-name -> value mapping."""
        return {
            "issue_width": self.issue_width,
            "iw_size": self.iw_size,
            "rob_size": self.rob_size,
            "l1_ports": self.l1_ports,
            "mshr_count": self.mshr_count,
            "l2_banks": self.l2_banks,
        }

    def with_knob(self, knob: str, value: int) -> "DesignPoint":
        """Copy with one knob replaced."""
        d = self.as_dict()
        if knob not in d:
            raise KeyError(f"unknown knob {knob!r}")
        d[knob] = value
        return DesignPoint(**d)

    def cost(self) -> float:
        """Hardware cost metric (monotone in every knob)."""
        return sum(_KNOB_COST[k] * v for k, v in self.as_dict().items())

    def label(self) -> str:
        """Compact human-readable identity."""
        return (
            f"w{self.issue_width}/iw{self.iw_size}/rob{self.rob_size}"
            f"/p{self.l1_ports}/m{self.mshr_count}/b{self.l2_banks}"
        )


@dataclass
class DesignSpace:
    """Knob ladders plus conversion and neighbourhood enumeration."""

    ladders: dict[str, tuple[int, ...]] = field(
        default_factory=lambda: dict(DEFAULT_LADDERS)
    )
    base_machine: MachineConfig = field(default_factory=MachineConfig)

    def __post_init__(self) -> None:
        for knob, ladder in self.ladders.items():
            if knob not in DEFAULT_LADDERS:
                raise ConfigError(f"unknown knob {knob!r}")
            if not ladder:
                raise ConfigError(f"empty ladder for {knob}")
            if list(ladder) != sorted(set(ladder)):
                raise ConfigError(f"ladder for {knob} must be strictly ascending")
        missing = set(DEFAULT_LADDERS) - set(self.ladders)
        if missing:
            raise ConfigError(f"missing ladders for {sorted(missing)}")

    def size(self) -> int:
        """Total number of design points (the paper's 10^6 figure)."""
        n = 1
        for ladder in self.ladders.values():
            n *= len(ladder)
        return n

    def validate(self, point: DesignPoint) -> None:
        """Check every knob value sits on its ladder."""
        for knob, value in point.as_dict().items():
            if value not in self.ladders[knob]:
                raise ConfigError(
                    f"{knob}={value} not on its ladder {self.ladders[knob]}"
                )

    def minimum_point(self) -> DesignPoint:
        """The weakest configuration (bottom of every ladder)."""
        return DesignPoint(**{k: ladder[0] for k, ladder in self.ladders.items()})

    def maximum_point(self) -> DesignPoint:
        """The strongest configuration (top of every ladder)."""
        return DesignPoint(**{k: ladder[-1] for k, ladder in self.ladders.items()})

    def to_machine(self, point: DesignPoint, *, name: str | None = None) -> MachineConfig:
        """Instantiate the simulator configuration for a design point."""
        self.validate(point)
        return self.base_machine.with_knobs(
            name=name if name is not None else point.label(),
            **point.as_dict(),
        )

    def _step(self, point: DesignPoint, knob: str, direction: int) -> DesignPoint | None:
        ladder = self.ladders[knob]
        value = getattr(point, knob)
        idx = ladder.index(value)
        nxt = idx + direction
        if not 0 <= nxt < len(ladder):
            return None
        return point.with_knob(knob, ladder[nxt])

    def upgrade(self, point: DesignPoint, knob: str) -> DesignPoint | None:
        """One ladder step up on *knob* (None at the top)."""
        return self._step(point, knob, +1)

    def downgrade(self, point: DesignPoint, knob: str) -> DesignPoint | None:
        """One ladder step down on *knob* (None at the bottom)."""
        return self._step(point, knob, -1)

    def upgrade_candidates(
        self, point: DesignPoint, knobs: "tuple[str, ...] | None" = None
    ) -> list[tuple[str, DesignPoint]]:
        """All single-knob upgrades of *point* (optionally restricted)."""
        out = []
        for knob in (knobs if knobs is not None else tuple(self.ladders)):
            nxt = self.upgrade(point, knob)
            if nxt is not None:
                out.append((knob, nxt))
        return out

    def downgrade_candidates(
        self, point: DesignPoint, knobs: "tuple[str, ...] | None" = None
    ) -> list[tuple[str, DesignPoint]]:
        """All single-knob downgrades of *point*, priciest savings first."""
        out = []
        for knob in (knobs if knobs is not None else tuple(self.ladders)):
            nxt = self.downgrade(point, knob)
            if nxt is not None:
                out.append((knob, nxt))
        out.sort(key=lambda kv: point.cost() - kv[1].cost(), reverse=True)
        return out
