"""Case Study I: LPM optimization on a reconfigurable architecture."""

from repro.reconfig.explorer import ExplorationLog, GreedyReconfigBackend, LadderBackend
from repro.reconfig.space import (
    DEFAULT_LADDERS,
    L1_KNOBS,
    L2_KNOBS,
    DesignPoint,
    DesignSpace,
)

__all__ = [
    "DEFAULT_LADDERS",
    "DesignPoint",
    "DesignSpace",
    "ExplorationLog",
    "GreedyReconfigBackend",
    "L1_KNOBS",
    "L2_KNOBS",
    "LadderBackend",
]
