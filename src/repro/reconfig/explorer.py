"""LPM-guided design-space exploration (Case Study I).

Two :class:`~repro.core.algorithm.MatchingBackend` implementations drive the
Fig. 3 algorithm over architecture configurations:

* :class:`LadderBackend` walks a preset configuration sequence (the Table I
  A->E walk): every "optimize" takes the next rung, every "deprovision"
  steps back towards cheaper rungs.  This reproduces the paper's narrated
  exploration exactly.
* :class:`GreedyReconfigBackend` searches the full six-knob design space:
  each "optimize" simulates the single-knob upgrades allowed for the
  requested layer(s) and keeps the one that reduces LPMR1 the most; each
  "deprovision" tries the cheapest-savings downgrade that keeps the
  configuration matched.  This realizes the paper's claim that LPM turns an
  intractable 10^6-point exploration into a short guided walk.

Both backends measure with the same trace and re-use
:func:`repro.sim.stats.simulate_and_measure_batch`, so each step is a full
simulation + C-AMAT analysis of the running application — the "online
measurement" of the paper scaled to trace-driven simulation, with every
batch-eligible candidate of a step stepped in one kernel call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.lpm import LPMRReport
from repro.reconfig.space import L1_KNOBS, L2_KNOBS, DesignPoint, DesignSpace
from repro.sim.params import MachineConfig
from repro.sim.stats import HierarchyStats
from repro.workloads.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.evaluate import EvaluationRuntime

__all__ = ["LadderBackend", "GreedyReconfigBackend", "ExplorationLog"]


@dataclass
class ExplorationLog:
    """Evaluation bookkeeping: how many simulations the search spent.

    ``evaluations`` counts only *fresh* simulations — the paper's "search
    cost" currency.  Design points recalled from the checkpoint journal or
    the persistent evaluation cache are tallied under ``cached``, and
    candidates ranked by the tier-0 surrogate without ever reaching the
    engine under ``predicted`` — three disjoint sources, so a summary
    never passes off a prediction (or a recalled result) as fresh engine
    work.
    """

    evaluations: int = 0
    cached: int = 0
    predicted: int = 0
    visited: list[str] = field(default_factory=list)

    def record(self, label: str) -> None:
        """Count one full simulate-and-measure evaluation."""
        self.evaluations += 1
        self.visited.append(label)

    def record_cached(self, label: str) -> None:
        """Count one evaluation recalled from a journal or cache."""
        self.cached += 1

    def record_predicted(self, label: str) -> None:
        """Count one candidate settled by a tier-0 prediction alone."""
        self.predicted += 1


class _SimulatingBackend:
    """Shared measurement plumbing for the two concrete backends.

    Measurements are cached on :meth:`MachineConfig.cache_key` — the full
    knob tuple, never the display ``name`` — so two differently-tuned
    configurations that happen to share a label cannot alias each other's
    results.  An optional :class:`~repro.runtime.evaluate.EvaluationRuntime`
    routes fresh measurements through the supervised pool (parallel workers,
    timeouts, retries) and its checkpoint journal; the exploration log then
    counts only evaluations that actually ran a simulation, so a resumed
    exploration reports zero duplicate work.
    """

    def __init__(
        self,
        trace: Trace,
        *,
        seed: int = 0,
        warm: bool = True,
        runtime: "EvaluationRuntime | None" = None,
        fidelity: str = "engine",
        top_k: int = 8,
        margin: float = 0.05,
    ) -> None:
        if fidelity not in ("engine", "multi"):
            raise ValueError(
                f"fidelity must be 'engine' or 'multi', got {fidelity!r}"
            )
        self.trace = trace
        self.seed = seed
        self.warm = warm
        self.runtime = runtime
        self.fidelity = fidelity
        self.top_k = top_k
        self.margin = margin
        self.log = ExplorationLog()
        self._cache: dict[str, HierarchyStats] = {}
        self._profiles: dict[int, object] = {}

    def _locality_profile(self, line_bytes: int):
        """The trace's locality profile, computed once per line size."""
        profile = self._profiles.get(line_bytes)
        if profile is None:
            from repro.workloads.locality import profile_trace

            profile = profile_trace(self.trace, line_bytes=line_bytes,
                                    warm=self.warm)
            self._profiles[line_bytes] = profile
        return profile

    def _prune_candidates(
        self, configs: "list[MachineConfig]", objective: str = "lpmr1"
    ) -> "list[MachineConfig]":
        """Tier-0 ranking of a candidate batch; keeps the escalation frontier.

        Engine fidelity (or a batch already within ``top_k``) keeps every
        candidate.  In ``"multi"`` mode the candidates the surrogate rules
        out are tallied as ``predicted`` in the log — they cost arithmetic,
        not simulations.  Already-measured candidates always survive (they
        are free — served from the in-memory cache).
        """
        if self.fidelity != "multi" or len(configs) <= self.top_k:
            return configs
        from repro.analysis.surrogate import predict_many, select_frontier
        from repro.obs import metrics as obs_metrics

        profile = self._locality_profile(configs[0].l1.line_bytes)
        predictions = predict_many(profile, configs)
        keep = set(select_frontier(predictions, top_k=self.top_k,
                                   margin=self.margin, objective=objective))
        keep.update(
            i for i, config in enumerate(configs)
            if config.cache_key() in self._cache
        )
        if obs_metrics.metrics_enabled():
            registry = obs_metrics.get_registry()
            registry.counter("surrogate.predict").inc(len(configs))
            registry.counter("surrogate.escalated").inc(len(keep))
            registry.counter("surrogate.pruned").inc(len(configs) - len(keep))
        for i, config in enumerate(configs):
            if i not in keep:
                self.log.record_predicted(config.name)
        return [config for i, config in enumerate(configs) if i in keep]

    def _journal_key(self, config: MachineConfig) -> str:
        return f"{self.trace.name}|seed={self.seed}|warm={self.warm}|{config.cache_key()}"

    def _measure_config(self, config: MachineConfig) -> HierarchyStats:
        return self._measure_many([config])[0]

    def _measure_many(self, configs: "list[MachineConfig]") -> "list[HierarchyStats]":
        """Measure a batch of configurations, deduplicated by knob identity."""
        fresh: dict[str, MachineConfig] = {}
        for config in configs:
            key = config.cache_key()
            if key not in self._cache and key not in fresh:
                fresh[key] = config
        if fresh and self.runtime is not None:
            from repro.runtime.evaluate import EvaluationRequest

            requests = [
                EvaluationRequest(
                    key=self._journal_key(config), config=config,
                    trace=self.trace, seed=self.seed, warm=self.warm,
                )
                for config in fresh.values()
            ]
            if self.runtime.faults is None and self.runtime.job_fn is None:
                # One batch kernel job for the whole ladder/walk step; the
                # chaos layer stays on the scalar per-config path.
                measured = self.runtime.evaluate_batch(requests)
            else:
                measured = self.runtime.evaluate_many(requests)
            sources = self.runtime.last_sources
            for key, config in fresh.items():
                jkey = self._journal_key(config)
                self._cache[key] = measured[jkey]
                if sources.get(jkey, "simulated") == "simulated":
                    self.log.record(config.name)
                else:
                    self.log.record_cached(config.name)
        elif fresh:
            from repro.sim.stats import simulate_and_measure_batch

            fresh_configs = list(fresh.values())
            pairs = simulate_and_measure_batch(
                fresh_configs, self.trace, seed=self.seed, warm=self.warm
            )
            for key, config, (_, stats) in zip(fresh, fresh_configs, pairs):
                self._cache[key] = stats
                self.log.record(config.name)
        return [self._cache[config.cache_key()] for config in configs]


class LadderBackend(_SimulatingBackend):
    """Walk a preset ladder of configurations (Table I's A..E).

    ``position`` starts at 0 (the weakest rung).  ``optimize`` advances one
    rung regardless of which layers were requested (each rung of the paper's
    ladder upgrades a bundle of knobs); ``deprovision`` moves to the next
    rung in ``deprovision_order`` if any remain.
    """

    def __init__(
        self,
        configs: "list[MachineConfig]",
        trace: Trace,
        *,
        deprovision_configs: "list[MachineConfig] | None" = None,
        seed: int = 0,
        warm: bool = True,
        runtime: "EvaluationRuntime | None" = None,
        fidelity: str = "engine",
        top_k: int = 8,
        margin: float = 0.05,
    ) -> None:
        super().__init__(trace, seed=seed, warm=warm, runtime=runtime,
                         fidelity=fidelity, top_k=top_k, margin=margin)
        if not configs:
            raise ValueError("need at least one configuration")
        self.configs = list(configs)
        self.deprovision_configs = list(deprovision_configs or [])
        self.position = 0
        self._deprovision_pos = 0
        self._current = self.configs[0]

    @property
    def current(self) -> MachineConfig:
        """The configuration the next measurement runs on."""
        return self._current

    def measure(self) -> LPMRReport:
        return self._measure_config(self._current).lpmr_report()

    def stats(self) -> HierarchyStats:
        """Full analyzer output for the current configuration."""
        return self._measure_config(self._current)

    def optimize(self, l1: bool, l2: bool) -> bool:
        if self.position + 1 >= len(self.configs):
            return False
        self.position += 1
        self._current = self.configs[self.position]
        return True

    def deprovision(self) -> bool:
        if self._deprovision_pos >= len(self.deprovision_configs):
            return False
        self._current = self.deprovision_configs[self._deprovision_pos]
        self._deprovision_pos += 1
        return True

    def describe(self) -> str:
        return self._current.name


class GreedyReconfigBackend(_SimulatingBackend):
    """Greedy single-knob search over the full design space.

    ``optimize(l1, l2)`` evaluates each allowed single-knob upgrade and
    commits to the one with the lowest resulting LPMR1 (requiring strict
    improvement).  ``deprovision()`` tries downgrades in decreasing
    cost-savings order and commits to the first whose LPMR1 stays under the
    matched threshold recorded at the last ``measure()``.
    """

    def __init__(
        self,
        space: DesignSpace,
        trace: Trace,
        *,
        start: DesignPoint | None = None,
        seed: int = 0,
        warm: bool = True,
        delta_percent: float = 10.0,
        runtime: "EvaluationRuntime | None" = None,
        fidelity: str = "engine",
        top_k: int = 8,
        margin: float = 0.05,
    ) -> None:
        super().__init__(trace, seed=seed, warm=warm, runtime=runtime,
                         fidelity=fidelity, top_k=top_k, margin=margin)
        self.space = space
        self.point = start if start is not None else space.minimum_point()
        space.validate(self.point)
        self.delta_percent = delta_percent
        self._last_threshold_t1: float | None = None

    def _stats_for(self, point: DesignPoint) -> HierarchyStats:
        return self._measure_config(self.space.to_machine(point))

    def measure(self) -> LPMRReport:
        stats = self._stats_for(self.point)
        report = stats.lpmr_report()
        self._last_threshold_t1 = report.thresholds(self.delta_percent).t1
        return report

    def stats(self) -> HierarchyStats:
        """Full analyzer output for the current design point."""
        return self._stats_for(self.point)

    def _allowed_knobs(self, l1: bool, l2: bool) -> tuple[str, ...]:
        knobs: tuple[str, ...] = ()
        if l1:
            knobs += L1_KNOBS
        if l2:
            knobs += L2_KNOBS
        return knobs

    def optimize(self, l1: bool, l2: bool) -> bool:
        candidates = self.space.upgrade_candidates(self.point, self._allowed_knobs(l1, l2))
        if not candidates:
            return False
        configs = [self.space.to_machine(candidate) for _, candidate in candidates]
        kept_keys = {
            config.cache_key() for config in self._prune_candidates(configs)
        }
        survivors = [
            (candidate, config)
            for (_, candidate), config in zip(candidates, configs)
            if config.cache_key() in kept_keys
        ]
        # One batch covering the incumbent and every surviving candidate:
        # with a pooled runtime attached the simulations run in parallel.
        measured = self._measure_many(
            [self.space.to_machine(self.point)]
            + [config for _, config in survivors]
        )
        current_lpmr1 = measured[0].lpmr1
        best: tuple[float, DesignPoint] | None = None
        for (candidate, _), stats in zip(survivors, measured[1:]):
            if best is None or stats.lpmr1 < best[0]:
                best = (stats.lpmr1, candidate)
        if best is None or best[0] >= current_lpmr1:
            return False
        self.point = best[1]
        return True

    def deprovision(self) -> bool:
        threshold = self._last_threshold_t1
        if threshold is None:
            return False
        for _, candidate in self.space.downgrade_candidates(self.point):
            stats = self._stats_for(candidate)
            if stats.lpmr1 <= threshold:
                self.point = candidate
                return True
        return False

    def describe(self) -> str:
        return self.point.label()
