"""The LPM optimization algorithm (paper Fig. 3).

The algorithm is a measurement-driven loop over four cases::

    measure LPMR1, LPMR2; compute thresholds T1 (Eq. 14), T2 (Eq. 15)
    Case I   LPMR1 > T1 and LPMR2 > T2   -> optimize L1 and L2 together
    Case II  LPMR1 > T1 and LPMR2 <= T2  -> optimize L1 only
    Case III LPMR1 + delta < T1          -> reduce hardware over-provision
    Case IV  T1 >= LPMR1 >= T1 - delta   -> matched; end

``delta`` is a positive slack controlling when hardware counts as
over-provided (the paper sets it per contention status; Case Study II uses
``delta = T1 * 50%``).

The loop is *backend-agnostic*: the paper applies it both to hardware
reconfiguration (Case Study I) and to software scheduling (Case Study II).
A backend implements :class:`MatchingBackend` — it knows how to re-measure
the running application and how to apply one optimization step at the
requested layers.  Every parameter the model needs is produced by the
backend's measurement (the algorithm is "application-aware since all the
parameter values needed by the models can be measured online").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Protocol

from repro.core.lpm import LPMRReport, MatchingThresholds
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.util.validation import check_int, check_positive

__all__ = [
    "LPMCase",
    "LPMStatus",
    "MatchingBackend",
    "LPMStep",
    "LPMRunResult",
    "LPMAlgorithm",
    "classify_case",
]


class LPMCase(enum.Enum):
    """The four cases of the Fig. 3 pseudo-code."""

    OPTIMIZE_BOTH = "I"        # both L1 and L2 layers need optimization
    OPTIMIZE_L1 = "II"         # only the L1 layer needs optimization
    DEPROVISION = "III"        # hardware over-provision should be reduced
    MATCHED = "IV"             # nothing to do; end the algorithm


class LPMStatus(enum.Enum):
    """Terminal status of one algorithm run."""

    MATCHED = "matched"                  # ended in Case IV
    EXHAUSTED = "exhausted"              # backend had no further moves
    STEP_LIMIT = "step-limit"            # safety bound reached


class MatchingBackend(Protocol):
    """What the LPM algorithm needs from an optimization substrate.

    Case Study I implements this with architecture reconfiguration
    (:class:`repro.reconfig.explorer.ReconfigBackend`); Case Study II with
    scheduling moves.  Measurement must reflect the backend's current state.
    """

    def measure(self) -> LPMRReport:
        """Re-measure the application on the current configuration."""
        ...

    def optimize(self, l1: bool, l2: bool) -> bool:
        """Apply one optimization step at the requested layer(s).

        Returns ``False`` when no improving move exists (design space or
        schedule space exhausted in the requested direction).
        """
        ...

    def deprovision(self) -> bool:
        """Reduce hardware provisioning by one step; ``False`` if impossible."""
        ...

    def describe(self) -> str:
        """Short label of the current configuration (for step history)."""
        ...


def classify_case(
    report: LPMRReport, thresholds: MatchingThresholds, delta: float
) -> LPMCase:
    """Map a measurement to one of the four Fig. 3 cases.

    The order of tests follows the pseudo-code: mismatches first (Cases I
    and II), then over-provision (Case III), then the matched band (Case
    IV).  Note Case II also covers ``T2 <= 0`` (L2 matching target already
    unreachable through L2 work alone — only L1 optimization can help).
    """
    if report.lpmr1 > thresholds.t1:
        if report.lpmr2 > thresholds.t2:
            return LPMCase.OPTIMIZE_BOTH
        return LPMCase.OPTIMIZE_L1
    if report.lpmr1 + delta < thresholds.t1:
        return LPMCase.DEPROVISION
    return LPMCase.MATCHED


@dataclass(frozen=True)
class LPMStep:
    """One iteration of the algorithm: what was measured and what was done."""

    index: int
    case: LPMCase
    report: LPMRReport
    thresholds: MatchingThresholds
    config_label: str
    action_taken: bool


@dataclass
class LPMRunResult:
    """History and outcome of one LPM algorithm run."""

    status: LPMStatus
    steps: list[LPMStep] = field(default_factory=list)

    @property
    def final_report(self) -> LPMRReport:
        """Measurement after the last applied action."""
        if not self.steps:
            raise ValueError("run produced no steps")
        return self.steps[-1].report

    @property
    def final_case(self) -> LPMCase:
        """Case classification at termination."""
        if not self.steps:
            raise ValueError("run produced no steps")
        return self.steps[-1].case

    @property
    def optimization_steps(self) -> int:
        """Number of steps in which the backend actually changed state."""
        return sum(1 for s in self.steps if s.action_taken)

    def trajectory(self) -> list[tuple[str, float, float]]:
        """(config label, LPMR1, LPMR2) per step — the Table I style walk."""
        return [(s.config_label, s.report.lpmr1, s.report.lpmr2) for s in self.steps]


class LPMAlgorithm:
    """Driver for the Fig. 3 LPMR-reduction loop.

    Parameters
    ----------
    delta_percent:
        The Δ% stall target: 1 for fine-grained, 10 for coarse-grained
        optimization (Section IV).
    delta_slack:
        The over-provision slack δ, in absolute LPMR units.  If
        ``delta_slack_fraction`` is given instead, δ is recomputed each
        step as that fraction of the current T1 (Case Study II uses 50%).
    max_steps:
        Safety bound on loop iterations (the paper's loop always terminates
        on real hardware because the design space is finite; a bound keeps
        buggy backends from spinning).
    """

    def __init__(
        self,
        delta_percent: float = 1.0,
        *,
        delta_slack: float | None = None,
        delta_slack_fraction: float | None = 0.5,
        max_steps: int = 256,
    ) -> None:
        check_positive("delta_percent", delta_percent)
        check_int("max_steps", max_steps, minimum=1)
        if delta_slack is not None and delta_slack_fraction is not None:
            raise ValueError("give delta_slack or delta_slack_fraction, not both")
        if delta_slack is None and delta_slack_fraction is None:
            raise ValueError("one of delta_slack / delta_slack_fraction is required")
        if delta_slack is not None:
            check_positive("delta_slack", delta_slack)
        if delta_slack_fraction is not None:
            check_positive("delta_slack_fraction", delta_slack_fraction)
        self.delta_percent = float(delta_percent)
        self.delta_slack = delta_slack
        self.delta_slack_fraction = delta_slack_fraction
        self.max_steps = max_steps

    def _delta_for(self, thresholds: MatchingThresholds) -> float:
        if self.delta_slack is not None:
            return self.delta_slack
        assert self.delta_slack_fraction is not None
        return thresholds.t1 * self.delta_slack_fraction

    def run(self, backend: MatchingBackend, *, allow_deprovision: bool = True) -> LPMRunResult:
        """Execute the loop until matched, exhausted, or the step limit.

        ``allow_deprovision=False`` skips Case III (the paper marks the
        over-provision reduction as optional).
        """
        result = LPMRunResult(status=LPMStatus.STEP_LIMIT)
        for index in range(self.max_steps):
            # One span per Fig. 3 iteration.  The attributes carry the full
            # decision state (LPMR1/LPMR2, thresholds, case, Δ-stall), so
            # the complete walk is reconstructable from the trace alone
            # (tests/obs/test_walk_trace.py exercises exactly that).
            with obs_trace.span("lpm.step", index=index) as span:  # repro: noqa[PERF001] -- one span per Fig. 3 step (<= max_steps ~ 10), not per instruction
                report = backend.measure()
                thresholds = report.thresholds(self.delta_percent)
                delta = self._delta_for(thresholds)
                case = classify_case(report, thresholds, delta)
                if case is LPMCase.DEPROVISION and not allow_deprovision:
                    case = LPMCase.MATCHED
                # The label must describe the configuration the measurement
                # was taken on, i.e. before any action mutates the backend.
                label = backend.describe()

                if case is LPMCase.MATCHED:
                    acted = False
                elif case is LPMCase.OPTIMIZE_BOTH:
                    acted = backend.optimize(l1=True, l2=True)
                elif case is LPMCase.OPTIMIZE_L1:
                    acted = backend.optimize(l1=True, l2=False)
                else:  # Case III
                    acted = backend.deprovision()

                span.set(
                    case=case.value,
                    config=label,
                    lpmr1=report.lpmr1,
                    lpmr2=report.lpmr2,
                    t1=thresholds.t1,
                    t2=thresholds.t2,
                    delta_slack=delta,
                    stall_predicted=report.predicted_stall_per_instruction(),
                    acted=acted,
                )
                if obs_metrics.metrics_enabled():
                    reg = obs_metrics.get_registry()
                    reg.counter("lpm.steps").inc()
                    reg.counter(f"lpm.case_{case.value}").inc()
                    reg.histogram("lpm.lpmr1").observe(report.lpmr1)
                    reg.histogram("lpm.lpmr2").observe(report.lpmr2)

            result.steps.append(LPMStep(index, case, report, thresholds, label, acted))
            if case is LPMCase.MATCHED:
                result.status = LPMStatus.MATCHED
                return result
            if not acted:
                result.status = LPMStatus.EXHAUSTED
                return result
        return result
