"""The Layered Performance Matching model (Section III-B, Eqs. 9-11, 14-15).

A memory hierarchy matches its processor when, at every layer, the request
rate from above equals the supply rate from below.  The Layered Performance
Matching Ratios quantify the mismatch::

    LPMR1 = C-AMAT1 * f_mem / CPI_exe                                 (Eq. 9)
    LPMR2 = C-AMAT2 * f_mem * MR1 / CPI_exe                           (Eq. 10)
    LPMR3 = C-AMAT3 * f_mem * MR1 * MR2 / CPI_exe                     (Eq. 11)

``LPMR >= 1`` in steady state (a layer cannot supply faster than it is
asked); LPMR = 1 is the perfectly matched optimum.

Request/supply rates (Section III-B):

* request rate on L1  = ``IPC_exe * f_mem``
* request rate on LLC = ``IPC_exe * f_mem * MR1``
* request rate on MM  = ``IPC_exe * f_mem * MR1 * MR2``
* supply rate of a layer = its measured ``APC`` (= 1 / C-AMAT of the layer)

so each LPMR is exactly (request rate)/(supply rate) of the matching pair.

Thresholds for "minimal data stall" (Δ% of pure compute time)::

    T1 = Δ% / (1 - overlapRatio_cm)                                   (Eq. 14)
    T2 = 1/eta * (Δ%/(1 - overlapRatio_cm) - H1*f_mem/(C_H1*CPI_exe)) (Eq. 15)

Meeting ``LPMR1 <= T1`` (equivalently ``LPMR2 <= T2``) bounds stall time per
instruction by ``Δ% * CPI_exe``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.stall import StallModel
from repro.util.validation import check_fraction, check_non_negative, check_positive

__all__ = [
    "lpmr1",
    "lpmr2",
    "lpmr3",
    "request_rate",
    "threshold_t1",
    "threshold_t2",
    "LPMRReport",
    "MatchingThresholds",
]


def request_rate(ipc_exe: float, f_mem: float, *miss_rates: float) -> float:
    """Request rate arriving at a layer, in accesses per cycle.

    ``IPC_exe * f_mem`` filtered down by the miss rates of every layer
    above: the L1 sees all memory instructions, the LLC sees the L1 misses,
    and main memory sees the LLC misses.
    """
    check_positive("ipc_exe", ipc_exe)
    check_fraction("f_mem", f_mem)
    rate = ipc_exe * f_mem
    for i, mr in enumerate(miss_rates):
        check_fraction(f"miss_rates[{i}]", mr)
        rate *= mr
    return rate


def lpmr1(camat1: float, f_mem: float, cpi_exe: float) -> float:
    """Eq. (9): ``LPMR1 = C-AMAT1 * f_mem / CPI_exe``."""
    check_non_negative("camat1", camat1)
    check_fraction("f_mem", f_mem)
    check_positive("cpi_exe", cpi_exe)
    return camat1 * f_mem / cpi_exe


def lpmr2(camat2: float, f_mem: float, mr1: float, cpi_exe: float) -> float:
    """Eq. (10): ``LPMR2 = C-AMAT2 * f_mem * MR1 / CPI_exe``."""
    check_non_negative("camat2", camat2)
    check_fraction("f_mem", f_mem)
    check_fraction("mr1", mr1)
    check_positive("cpi_exe", cpi_exe)
    return camat2 * f_mem * mr1 / cpi_exe


def lpmr3(camat3: float, f_mem: float, mr1: float, mr2: float, cpi_exe: float) -> float:
    """Eq. (11): ``LPMR3 = C-AMAT3 * f_mem * MR1 * MR2 / CPI_exe``."""
    check_non_negative("camat3", camat3)
    check_fraction("f_mem", f_mem)
    check_fraction("mr1", mr1)
    check_fraction("mr2", mr2)
    check_positive("cpi_exe", cpi_exe)
    return camat3 * f_mem * mr1 * mr2 / cpi_exe


def threshold_t1(delta_percent: float, overlap_ratio_cm: float) -> float:
    """Eq. (14): ``T1 = Δ% / (1 - overlapRatio_cm)``.

    ``LPMR1 <= T1`` guarantees stall/instruction <= Δ% of ``CPI_exe``
    (by substituting into Eq. 12).  Δ is given in percent (1 -> "1%").
    """
    check_positive("delta_percent", delta_percent)
    check_fraction("overlap_ratio_cm", overlap_ratio_cm, inclusive_high=False)
    return (delta_percent / 100.0) / (1.0 - overlap_ratio_cm)


def threshold_t2(
    delta_percent: float,
    overlap_ratio_cm: float,
    eta_combined: float,
    hit_time: float,
    hit_concurrency: float,
    f_mem: float,
    cpi_exe: float,
) -> float:
    """Eq. (15): the LPMR2 threshold.

    ``T2 = (1/eta) * (Δ%/(1 - overlap) - H1*f_mem/(C_H1*CPI_exe))``

    The inner difference is the stall budget left after the (unavoidable)
    concurrency-adjusted L1 hit cost; it is divided by ``eta`` because only
    an ``eta`` fraction of L2's latency reaches stall time (Eq. 13).  A
    non-positive T2 means the L1 hit cost alone exceeds the budget, so the
    Δ% target is unreachable by L2-side optimization alone.
    """
    check_positive("delta_percent", delta_percent)
    check_fraction("overlap_ratio_cm", overlap_ratio_cm, inclusive_high=False)
    check_non_negative("eta_combined", eta_combined)
    check_positive("hit_time", hit_time)
    check_positive("hit_concurrency", hit_concurrency)
    check_fraction("f_mem", f_mem)
    check_positive("cpi_exe", cpi_exe)
    budget = (delta_percent / 100.0) / (1.0 - overlap_ratio_cm)
    hit_cost = hit_time * f_mem / (hit_concurrency * cpi_exe)
    if eta_combined == 0.0:
        # No miss penalty reaches stall time; the L2 matching constraint is
        # vacuous (any LPMR2 satisfies the budget) unless the hit cost alone
        # already blows it.
        return math.inf if budget >= hit_cost else -math.inf
    return (budget - hit_cost) / eta_combined


@dataclass(frozen=True)
class MatchingThresholds:
    """The pair of thresholds (T1, T2) for a given Δ% target."""

    delta_percent: float
    t1: float
    t2: float

    @classmethod
    def compute(
        cls,
        delta_percent: float,
        stall_model: StallModel,
        eta_combined: float,
        hit_time: float,
        hit_concurrency: float,
    ) -> "MatchingThresholds":
        """Evaluate Eqs. (14) and (15) from measured quantities."""
        t1 = threshold_t1(delta_percent, stall_model.overlap_ratio_cm)
        t2 = threshold_t2(
            delta_percent,
            stall_model.overlap_ratio_cm,
            eta_combined,
            hit_time,
            hit_concurrency,
            stall_model.f_mem,
            stall_model.cpi_exe,
        )
        return cls(delta_percent=delta_percent, t1=t1, t2=t2)


@dataclass(frozen=True)
class LPMRReport:
    """A complete matching snapshot of a two-cache-level hierarchy.

    Produced by :func:`repro.core.analyzer.analyze_hierarchy` (measurement
    path) or assembled manually for model studies.  All rates are per-core.
    """

    lpmr1: float
    lpmr2: float
    lpmr3: float
    camat1: float
    camat2: float
    camat3: float
    mr1: float
    mr2: float
    f_mem: float
    cpi_exe: float
    overlap_ratio_cm: float
    eta_combined: float
    hit_time1: float
    hit_concurrency1: float

    def __post_init__(self) -> None:
        check_non_negative("lpmr1", self.lpmr1)
        check_non_negative("lpmr2", self.lpmr2)
        check_non_negative("lpmr3", self.lpmr3)
        check_positive("cpi_exe", self.cpi_exe)

    @property
    def stall_model(self) -> StallModel:
        """Processor-side stall parameters embedded in this report."""
        return StallModel(
            f_mem=self.f_mem,
            cpi_exe=self.cpi_exe,
            overlap_ratio_cm=self.overlap_ratio_cm,
        )

    def predicted_stall_per_instruction(self) -> float:
        """Eq. (12) prediction of stall cycles per instruction."""
        return self.stall_model.stall_from_lpmr1(self.lpmr1)

    def predicted_stall_fraction_of_compute(self) -> float:
        """Predicted stall as a fraction of ``CPI_exe`` (the Δ% quantity)."""
        return self.predicted_stall_per_instruction() / self.cpi_exe

    def thresholds(self, delta_percent: float) -> MatchingThresholds:
        """Thresholds (T1, T2) for a Δ% stall target under this snapshot."""
        return MatchingThresholds.compute(
            delta_percent,
            self.stall_model,
            self.eta_combined,
            self.hit_time1,
            self.hit_concurrency1,
        )

    def is_matched(self, delta_percent: float) -> bool:
        """Whether layer-1 matching meets the Δ% target (``LPMR1 <= T1``)."""
        return self.lpmr1 <= self.thresholds(delta_percent).t1
