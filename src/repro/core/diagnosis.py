"""Bottleneck diagnosis: from measurements to technique recommendations.

The paper positions LPM above a "technique pool": "our model presents
guidance on when and how to use existing locality and concurrency driven
techniques collectively."  This module turns a measured
:class:`~repro.sim.stats.HierarchyStats` into that guidance:

1. decompose the application-visible C-AMAT into its Eq. (2) terms and
   attribute the stall to the hit side (``H/C_H``) or the pure-miss side
   (``pMR·pAMP/C_M``);
2. within the dominant side, identify the binding parameter by comparing
   against its attainable ceiling (ports for C_H, MSHR/window for C_M,
   footprint-vs-capacity for pMR, lower-layer service vs queueing for
   pAMP);
3. map each finding to the matching pool techniques, ordered by the
   algorithm's case logic (Case I/II tell *which layer*; the diagnosis
   tells *which knob*).

The output is a list of :class:`Finding` objects (machine-readable) plus a
rendered report, used by the ``python -m repro diagnose`` command.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.report import render_table
from repro.sim.params import MachineConfig
from repro.sim.stats import HierarchyStats

__all__ = ["Finding", "diagnose", "render_diagnosis"]

#: A hit/pure-miss share above this marks the side as dominant.
_DOMINANT_SHARE = 0.6
#: Utilization above this marks a resource as saturated.
_SATURATED = 0.8


@dataclass(frozen=True)
class Finding:
    """One diagnosed bottleneck with its recommended techniques.

    ``severity`` orders findings (fraction of C-AMAT attributed to the
    finding's term, weighted by how close the resource is to its ceiling).
    """

    dimension: str          # "H" | "C_H" | "pMR" | "pAMP" | "C_M" | "matched"
    layer: str              # "L1" | "L2" | "memory" | "core"
    severity: float
    evidence: str
    techniques: tuple[str, ...]


def _hit_side_findings(stats: HierarchyStats, config: MachineConfig,
                       share: float) -> list[Finding]:
    findings = []
    l1 = stats.l1
    # Attainable C_H ceiling: ports (x hit-time overlap when pipelined).
    ceiling = config.l1_ports * (config.l1_hit_time if config.l1_pipelined else 1)
    utilization = l1.hit_concurrency / ceiling if ceiling else 0.0
    if utilization >= _SATURATED:
        findings.append(Finding(
            dimension="C_H",
            layer="L1",
            severity=share * utilization,
            evidence=(
                f"C_H={l1.hit_concurrency:.2f} is at {100 * utilization:.0f}% of "
                f"the port-limited ceiling {ceiling:.0f}"
            ),
            techniques=(
                "add L1 ports (multi-port / multi-banked L1)",
                "pipeline the L1 access path",
                "wider issue only after supply is unlocked",
            ),
        ))
    else:
        findings.append(Finding(
            dimension="H",
            layer="L1",
            severity=share * (1 - utilization),
            evidence=(
                f"hit term H/C_H = {l1.hit_time:.1f}/{l1.hit_concurrency:.2f} "
                f"dominates with port headroom remaining"
            ),
            techniques=(
                "reduce hit time (smaller/faster L1, way prediction)",
                "raise hit concurrency only if demand grows",
            ),
        ))
    return findings


def _miss_side_findings(stats: HierarchyStats, config: MachineConfig,
                        share: float) -> list[Finding]:
    findings = []
    l1 = stats.l1
    # C_M vs the MSHR ceiling.
    cm_utilization = l1.pure_miss_concurrency / config.mshr_count
    # pAMP vs the un-queued lower-layer service time.
    base_round_trip = (
        config.l1_to_l2_delay * 2 + config.l2_hit_time
    )
    queueing_ratio = (
        l1.pure_miss_penalty / base_round_trip if base_round_trip else 0.0
    )
    # Locality: how much of the miss traffic is pure (unhidden).
    purity = l1.pure_miss_count / l1.miss_count if l1.miss_count else 0.0

    if cm_utilization >= _SATURATED:
        findings.append(Finding(
            dimension="C_M",
            layer="L1",
            severity=share * min(cm_utilization, 1.0),
            evidence=(
                f"C_M={l1.pure_miss_concurrency:.2f} is at "
                f"{100 * cm_utilization:.0f}% of the {config.mshr_count} MSHRs"
            ),
            techniques=(
                "add MSHRs (deeper non-blocking cache)",
                "enlarge the instruction window / ROB to expose more misses",
                "cluster independent misses (software scheduling)",
            ),
        ))
    if queueing_ratio > 2.0 and stats.mr2_request > 0.05:
        findings.append(Finding(
            dimension="pAMP",
            layer="memory",
            severity=share * min(queueing_ratio / 10.0, 1.0),
            evidence=(
                f"pAMP={l1.pure_miss_penalty:.0f} is {queueing_ratio:.1f}x the "
                f"un-queued L2 round trip ({base_round_trip} cycles): deep-layer "
                f"latency/queueing dominates (MR2={stats.mr2_request:.2f})"
            ),
            techniques=(
                "grow/partition the LLC (capacity for the spilling footprint)",
                "more DRAM banks / better row-buffer locality",
                "prefetch predictable streams ahead of demand",
            ),
        ))
    elif queueing_ratio > 2.0:
        findings.append(Finding(
            dimension="pAMP",
            layer="L2",
            severity=share * min(queueing_ratio / 10.0, 1.0),
            evidence=(
                f"pAMP={l1.pure_miss_penalty:.0f} is {queueing_ratio:.1f}x the "
                f"un-queued L2 round trip: L2 bank queueing dominates"
            ),
            techniques=(
                "more L2 banks (interleaving)",
                "pipeline L2 accesses",
            ),
        ))
    if purity > 0.5 and l1.miss_rate > 0.05:
        findings.append(Finding(
            dimension="pMR",
            layer="L1",
            severity=share * purity,
            evidence=(
                f"{100 * purity:.0f}% of misses are pure (pMR={l1.pure_miss_rate:.3f}, "
                f"MR={l1.miss_rate:.3f}): little hit activity hides them"
            ),
            techniques=(
                "improve locality (bigger/smarter L1, selective replacement/bypass)",
                "prefetch to convert demand misses into hits",
                "overlap misses with hits (software: interleave hot work with misses)",
            ),
        ))
    return findings


def diagnose(stats: HierarchyStats, config: MachineConfig) -> list[Finding]:
    """Produce ordered bottleneck findings for a measured run.

    Returns findings sorted by severity (highest first).  A well-matched
    run (stall below 10% of compute) yields a single "matched" finding.
    """
    if stats.stall_fraction_of_compute < 0.10:
        return [Finding(
            dimension="matched",
            layer="core",
            severity=0.0,
            evidence=(
                f"stall is {100 * stats.stall_fraction_of_compute:.1f}% of "
                "CPI_exe — within the coarse-grained target"
            ),
            techniques=("consider Case III: trim over-provisioned hardware",),
        )]

    l1 = stats.l1
    camat = l1.camat if l1.camat else 1.0
    hit_share = l1.camat_params.hit_component / camat
    miss_share = l1.camat_params.miss_component / camat

    findings: list[Finding] = []
    if hit_share >= _DOMINANT_SHARE or miss_share < _DOMINANT_SHARE:
        findings.extend(_hit_side_findings(stats, config, hit_share))
    if miss_share > 1 - _DOMINANT_SHARE:
        findings.extend(_miss_side_findings(stats, config, miss_share))
    findings.sort(key=lambda f: f.severity, reverse=True)
    return findings


def render_diagnosis(stats: HierarchyStats, config: MachineConfig) -> str:
    """Human-readable diagnosis report."""
    findings = diagnose(stats, config)
    l1 = stats.l1
    header = (
        f"C-AMAT1 = {l1.camat:.2f} cycles/access "
        f"(hit term {l1.camat_params.hit_component:.2f} + "
        f"pure-miss term {l1.camat_params.miss_component:.2f}); "
        f"stall = {100 * stats.stall_fraction_of_compute:.0f}% of CPI_exe; "
        f"LPMR1 = {stats.lpmr1:.2f}"
    )
    rows = []
    for f in findings:
        rows.append((f.dimension, f.layer, f.severity, f.evidence))
    table = render_table(
        ["dimension", "layer", "severity", "evidence"], rows, float_fmt="{:.2f}",
        title=header,
    )
    lines = [table, "", "recommended techniques (ordered):"]
    seen = set()
    for f in findings:
        for t in f.techniques:
            if t not in seen:
                seen.add(t)
                lines.append(f"  - [{f.dimension}] {t}")
    return "\n".join(lines)
