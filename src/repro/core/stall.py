"""CPU-time and data-stall-time formulations (Section III-A, Eqs. 5-8, 12-13).

The paper's execution-time decomposition::

    CPU-time = IC * (CPI_exe + Data-stall-time) * Cycle-time          (Eq. 5)

where ``Data-stall-time`` is expressed *per instruction* (stall cycles per
instruction, CPI-like units), ``CPI_exe`` is the computation CPI under a
perfect cache, and ``IC`` is the instruction count.

Two stall models are provided:

* the conventional AMAT-based one, valid only for in-order blocking
  processors::

      Data-stall-time = f_mem * AMAT                                  (Eq. 6)

  (strictly, ``f_mem * MR * AMP`` in Hennessy-Patterson form; the paper
  writes the whole-AMAT variant and we provide both), and

* the concurrency-aware C-AMAT-based one::

      Data-stall-time = f_mem * C-AMAT * (1 - overlapRatio_cm)        (Eq. 7)

  with ``overlapRatio_cm = overlapCycles_cm / T_memAcc``               (Eq. 8)

Finally the LPM forms (derived in Section III-B)::

      Data-stall-time = CPI_exe * (1 - overlapRatio_cm) * LPMR1       (Eq. 12)
      Data-stall-time = (H1/C_H1 * f_mem
                         + CPI_exe * eta * LPMR2)
                        * (1 - overlapRatio_cm)                       (Eq. 13)

where ``eta = (pAMP1/AMP1) * (Cm1/C_M1) * (pMR1/MR1)`` is the *combined*
concurrency-and-locality effectiveness factor of Eq. (13) (note: it folds in
``pMR1/MR1`` on top of the per-layer ``eta1`` of Eq. (4)).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_fraction, check_non_negative, check_positive

__all__ = [
    "cpu_time",
    "stall_time_amat",
    "stall_time_amat_classic",
    "overlap_ratio",
    "stall_time_camat",
    "stall_time_lpmr1",
    "stall_time_lpmr2",
    "combined_eta",
    "StallModel",
]


def cpu_time(
    instruction_count: float,
    cpi_exe: float,
    data_stall_per_instruction: float,
    cycle_time: float = 1.0,
) -> float:
    """Eq. (5): ``CPU-time = IC * (CPI_exe + stall/instr) * Cycle-time``."""
    check_positive("instruction_count", instruction_count)
    check_positive("cpi_exe", cpi_exe)
    check_non_negative("data_stall_per_instruction", data_stall_per_instruction)
    check_positive("cycle_time", cycle_time)
    return instruction_count * (cpi_exe + data_stall_per_instruction) * cycle_time


def stall_time_amat(f_mem: float, amat_value: float) -> float:
    """Eq. (6): ``Data-stall-time = f_mem * AMAT`` (per instruction).

    Only valid for in-order blocking processors; kept as the baseline the
    paper improves on.
    """
    check_fraction("f_mem", f_mem)
    check_non_negative("amat_value", amat_value)
    return f_mem * amat_value


def stall_time_amat_classic(f_mem: float, miss_rate: float, avg_miss_penalty: float) -> float:
    """Hennessy-Patterson stall form: ``f_mem * MR * AMP`` per instruction.

    Counts only the miss-penalty portion as stall (the hit time is part of
    the pipeline); provided alongside Eq. (6) for comparison studies.
    """
    check_fraction("f_mem", f_mem)
    check_fraction("miss_rate", miss_rate)
    check_non_negative("avg_miss_penalty", avg_miss_penalty)
    return f_mem * miss_rate * avg_miss_penalty


def overlap_ratio(overlap_cycles: float, total_mem_access_cycles: float) -> float:
    """Eq. (8): ``overlapRatio_cm = overlapCycles_cm / T_memAcc``.

    The fraction of memory-active time during which computation proceeds
    concurrently (enabled by OoO execution, SMT, and non-blocking caches).
    """
    check_non_negative("overlap_cycles", overlap_cycles)
    check_positive("total_mem_access_cycles", total_mem_access_cycles)
    ratio = overlap_cycles / total_mem_access_cycles
    if ratio > 1.0 + 1e-12:
        raise ValueError(
            f"overlap cycles ({overlap_cycles}) exceed total memory access "
            f"cycles ({total_mem_access_cycles})"
        )
    return min(ratio, 1.0)


def stall_time_camat(f_mem: float, camat_value: float, overlap_ratio_cm: float) -> float:
    """Eq. (7): ``Data-stall-time = f_mem * C-AMAT * (1 - overlapRatio_cm)``."""
    check_fraction("f_mem", f_mem)
    check_non_negative("camat_value", camat_value)
    check_fraction("overlap_ratio_cm", overlap_ratio_cm)
    return f_mem * camat_value * (1.0 - overlap_ratio_cm)


def stall_time_lpmr1(cpi_exe: float, overlap_ratio_cm: float, lpmr1: float) -> float:
    """Eq. (12): ``Data-stall-time = CPI_exe * (1 - overlapRatio_cm) * LPMR1``."""
    check_positive("cpi_exe", cpi_exe)
    check_fraction("overlap_ratio_cm", overlap_ratio_cm)
    check_non_negative("lpmr1", lpmr1)
    return cpi_exe * (1.0 - overlap_ratio_cm) * lpmr1


def combined_eta(
    pure_miss_penalty: float,
    avg_miss_penalty: float,
    miss_concurrency: float,
    pure_miss_concurrency: float,
    pure_miss_rate: float,
    miss_rate: float,
) -> float:
    """The Eq. (13) effectiveness factor.

    ``eta = (pAMP1/AMP1) * (Cm1/C_M1) * (pMR1/MR1)``

    Close to zero when hit-miss overlapping hides most miss penalties; equal
    to one when concurrency is absent (AMAT special case).
    """
    check_non_negative("pure_miss_penalty", pure_miss_penalty)
    check_positive("avg_miss_penalty", avg_miss_penalty)
    check_positive("miss_concurrency", miss_concurrency)
    check_positive("pure_miss_concurrency", pure_miss_concurrency)
    check_fraction("pure_miss_rate", pure_miss_rate)
    check_positive("miss_rate", miss_rate)
    return (
        (pure_miss_penalty / avg_miss_penalty)
        * (miss_concurrency / pure_miss_concurrency)
        * (pure_miss_rate / miss_rate)
    )


def stall_time_lpmr2(
    hit_time: float,
    hit_concurrency: float,
    f_mem: float,
    cpi_exe: float,
    eta_combined: float,
    lpmr2: float,
    overlap_ratio_cm: float,
) -> float:
    """Eq. (13): stall time in terms of the L2 matching ratio.

    ``stall = (H1/C_H1 * f_mem + CPI_exe * eta * LPMR2) * (1 - overlapRatio)``
    """
    check_positive("hit_time", hit_time)
    check_positive("hit_concurrency", hit_concurrency)
    check_fraction("f_mem", f_mem)
    check_positive("cpi_exe", cpi_exe)
    check_non_negative("eta_combined", eta_combined)
    check_non_negative("lpmr2", lpmr2)
    check_fraction("overlap_ratio_cm", overlap_ratio_cm)
    return (hit_time / hit_concurrency * f_mem + cpi_exe * eta_combined * lpmr2) * (
        1.0 - overlap_ratio_cm
    )


@dataclass(frozen=True)
class StallModel:
    """Bundle of the processor-side quantities the stall formulas need.

    Attributes
    ----------
    f_mem:
        Fraction of instructions that access memory.
    cpi_exe:
        Computation cycles per instruction under a perfect cache.
    overlap_ratio_cm:
        Computing/memory overlap ratio (Eq. 8).
    """

    f_mem: float
    cpi_exe: float
    overlap_ratio_cm: float

    def __post_init__(self) -> None:
        check_fraction("f_mem", self.f_mem)
        check_positive("cpi_exe", self.cpi_exe)
        check_fraction("overlap_ratio_cm", self.overlap_ratio_cm)

    @property
    def ipc_exe(self) -> float:
        """Compute intensity ``IPC_exe = 1/CPI_exe`` (Section III-B)."""
        return 1.0 / self.cpi_exe

    def stall_from_camat(self, camat_value: float) -> float:
        """Eq. (7) applied with this model's processor parameters."""
        return stall_time_camat(self.f_mem, camat_value, self.overlap_ratio_cm)

    def stall_from_lpmr1(self, lpmr1: float) -> float:
        """Eq. (12) applied with this model's processor parameters."""
        return stall_time_lpmr1(self.cpi_exe, self.overlap_ratio_cm, lpmr1)

    def cpu_time_per_instruction(self, data_stall_per_instruction: float) -> float:
        """Per-instruction CPU time (Eq. 5 with IC = Cycle-time = 1)."""
        return cpu_time(1.0, self.cpi_exe, data_stall_per_instruction)

    def stall_budget(self, delta_percent: float) -> float:
        """The 'minimal data stall' budget: ``delta% * CPI_exe`` cycles/instr.

        Section IV: any stall below Δ% of pure computing time is considered
        minimal; Δ = 1 is the fine-grained target, Δ = 10 coarse-grained.
        """
        check_positive("delta_percent", delta_percent)
        return delta_percent / 100.0 * self.cpi_exe
