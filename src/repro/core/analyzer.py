"""The C-AMAT analyzer (paper Fig. 4): measuring C_H, C_M, pMR, pAMP, APC.

The paper's detecting system consists of a Hit Concurrency Detector (HCD)
and a Miss Concurrency Detector (MCD) attached to each cache layer:

* the HCD counts, per cycle, how many in-flight accesses are in their
  *hit-operation* phase (this includes the lookup phase of accesses that
  will miss — in Fig. 1 every access spends ``H`` cycles on "cache hit
  operations" whether it hits or not);
* the MCD counts, per cycle, how many in-flight accesses are in their
  *miss-penalty* phase, and — by asking the HCD whether the current cycle
  has any hit activity — classifies each miss cycle as *pure* (no
  concurrent hit activity) or *overlapped*.

From those per-cycle observations the five C-AMAT parameters follow:

===============  =====================================================
``C_H``          (sum of hit concurrency over hit-active cycles)
                 / (number of hit-active cycles)
``C_M``          (sum of miss concurrency over pure-miss cycles)
                 / (number of pure-miss cycles)
``pMR``          (number of accesses with >= 1 pure miss cycle) / accesses
``pAMP``         (total pure miss cycles of pure misses) / (pure misses)
``APC``          accesses / memory-active cycles
===============  =====================================================

Exact identities (proved by the definitions, property-tested in
``tests/core/test_analyzer_properties.py``):

* every memory-active cycle is either hit-active or a pure-miss cycle, so
  ``C-AMAT = H/C_H + pMR*pAMP/C_M = active_cycles/accesses = 1/APC``
  whenever all accesses share the same hit time ``H``;
* ``sum of per-access pure miss cycles == sum of miss concurrency over
  pure-miss cycles`` (both count (access, pure cycle) incidences).

Two implementations are provided:

* :func:`measure_layer` — vectorized (numpy difference arrays), used by the
  simulator; cost is O(accesses + active cycle span);
* :class:`HitConcurrencyDetector` / :class:`MissConcurrencyDetector` — the
  cycle-by-cycle streaming detectors of Fig. 4, used online by the LPM
  algorithm's interval-based measurement and to cross-validate the
  vectorized path in tests.

Interval convention: all intervals are half-open ``[start, end)`` in cycles;
an empty interval (``start == end``) denotes "no such phase" (e.g. the miss
interval of a hit).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.camat import CAMATParams
from repro.lint.contracts import satisfies
from repro.util.validation import safe_ratio

__all__ = [
    "LayerMeasurement",
    "measure_layer",
    "concurrency_profile",
    "active_cycle_count",
    "HitConcurrencyDetector",
    "MissConcurrencyDetector",
    "CAMATAnalyzer",
]


def _as_cycle_array(name: str, values: "np.ndarray | list[int]") -> np.ndarray:
    arr = np.asarray(values, dtype=np.int64)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    return arr


def concurrency_profile(
    starts: np.ndarray, ends: np.ndarray, lo: int, hi: int
) -> np.ndarray:
    """Per-cycle concurrency over ``[lo, hi)`` from half-open intervals.

    Returns an array ``c`` of length ``hi - lo`` where ``c[t - lo]`` is the
    number of intervals containing cycle ``t``.  Built with a difference
    array + cumulative sum, so the cost is O(intervals + span) rather than
    O(intervals * span).
    """
    if hi < lo:
        raise ValueError(f"hi ({hi}) must be >= lo ({lo})")
    span = hi - lo
    diff = np.zeros(span + 1, dtype=np.int64)
    s = np.clip(starts, lo, hi) - lo
    e = np.clip(ends, lo, hi) - lo
    keep = e > s
    np.add.at(diff, s[keep], 1)
    np.add.at(diff, e[keep], -1)
    return np.cumsum(diff[:-1])


def active_cycle_count(profile: np.ndarray) -> int:
    """Number of cycles with any activity in a concurrency profile."""
    return int(np.count_nonzero(profile))


@dataclass(frozen=True)
class LayerMeasurement:
    """Everything the HCD/MCD pair measures for one memory layer.

    All concurrency values are per-cycle averages; all penalties and times
    are in cycles of this layer's clock.  ``camat_params`` bundles the five
    C-AMAT parameters (Eq. 2) for downstream model evaluation.
    """

    accesses: int
    hit_time: float
    hit_concurrency: float          # C_H
    miss_count: int
    miss_rate: float                # MR
    avg_miss_penalty: float         # AMP (0 when no misses)
    miss_concurrency: float         # Cm  (1 when no miss-active cycles)
    pure_miss_count: int
    pure_miss_rate: float           # pMR
    pure_miss_penalty: float        # pAMP (pure cycles only; 0 if no pure misses)
    pure_miss_concurrency: float    # C_M (1 when no pure-miss cycles)
    hit_active_cycles: int
    miss_active_cycles: int
    pure_miss_cycles: int
    active_cycles: int

    @property
    def apc(self) -> float:
        """Accesses per memory-active cycle (Eq. 3 measurement)."""
        return safe_ratio(self.accesses, self.active_cycles)

    @property
    def camat(self) -> float:
        """C-AMAT = 1/APC = active cycles per access."""
        return safe_ratio(self.active_cycles, self.accesses)

    @property
    def amat(self) -> float:
        """The conventional AMAT (Eq. 1) from the same measurements."""
        return self.hit_time + self.miss_rate * self.avg_miss_penalty

    @property
    def eta(self) -> float:
        """Per-layer coupling factor ``eta = (pAMP/AMP) * (Cm/C_M)`` (Eq. 4).

        Defined as 0 when there are no misses (the recursion term vanishes).
        """
        if self.miss_count == 0:
            return 0.0
        return safe_ratio(self.pure_miss_penalty, self.avg_miss_penalty) * safe_ratio(
            self.miss_concurrency, self.pure_miss_concurrency, default=1.0
        )

    @property
    def camat_params(self) -> CAMATParams:
        """The five Eq. (2) parameters as a :class:`CAMATParams` bundle."""
        return CAMATParams(
            hit_time=self.hit_time,
            hit_concurrency=max(self.hit_concurrency, 1.0),
            pure_miss_rate=self.pure_miss_rate,
            pure_miss_penalty=self.pure_miss_penalty,
            pure_miss_concurrency=max(self.pure_miss_concurrency, 1.0),
        )

    @property
    def camat_model(self) -> float:
        """C-AMAT via Eq. (2); equals :attr:`camat` for uniform hit times."""
        return self.camat_params.value

    # -- serialization (checkpoint journal) -------------------------------
    def to_dict(self) -> dict:
        """Plain-scalar dictionary for JSON checkpointing."""
        from dataclasses import asdict

        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "LayerMeasurement":
        """Inverse of :meth:`to_dict`."""
        return cls(**data)


@satisfies(
    "cycle_conservation", "pure_subset", "rate_bounds", "concurrency_floor",
    "eq2_identity", "eq3_apc_inverse", "finite_layer",
)
def measure_layer(
    hit_start: "np.ndarray | list[int]",
    hit_end: "np.ndarray | list[int]",
    miss_start: "np.ndarray | list[int]",
    miss_end: "np.ndarray | list[int]",
) -> LayerMeasurement:
    """Measure one layer from per-access hit/miss intervals (vectorized HCD+MCD).

    Parameters
    ----------
    hit_start, hit_end:
        Half-open hit-operation interval of every access (misses included —
        their lookup cycles are hit activity, per Fig. 1).
    miss_start, miss_end:
        Half-open miss-penalty interval; ``start == end`` for hits.

    Notes
    -----
    Cost is O(accesses + cycle span) in time and O(span) in memory, using
    difference arrays instead of per-cycle simulation (see the module
    docstring of :mod:`repro.core.analyzer`).
    """
    hs = _as_cycle_array("hit_start", hit_start)
    he = _as_cycle_array("hit_end", hit_end)
    ms = _as_cycle_array("miss_start", miss_start)
    me = _as_cycle_array("miss_end", miss_end)
    n = hs.shape[0]
    if not (he.shape[0] == ms.shape[0] == me.shape[0] == n):
        raise ValueError("all interval arrays must have the same length")
    if n == 0:
        return LayerMeasurement(
            accesses=0, hit_time=0.0, hit_concurrency=1.0,
            miss_count=0, miss_rate=0.0, avg_miss_penalty=0.0, miss_concurrency=1.0,
            pure_miss_count=0, pure_miss_rate=0.0, pure_miss_penalty=0.0,
            pure_miss_concurrency=1.0, hit_active_cycles=0, miss_active_cycles=0,
            pure_miss_cycles=0, active_cycles=0,
        )
    if np.any(he < hs) or np.any(me < ms):
        raise ValueError("interval ends must be >= starts")
    if np.any(he == hs):
        raise ValueError("every access must have a non-empty hit-operation interval")

    lo = int(min(hs.min(), ms.min()))
    hi = int(max(he.max(), me.max()))

    hit_conc = concurrency_profile(hs, he, lo, hi)
    miss_conc = concurrency_profile(ms, me, lo, hi)

    hit_active = hit_conc > 0
    miss_active = miss_conc > 0
    pure_cycle = miss_active & ~hit_active

    hit_active_cycles = int(np.count_nonzero(hit_active))
    miss_active_cycles = int(np.count_nonzero(miss_active))
    pure_miss_cycles = int(np.count_nonzero(pure_cycle))
    active_cycles = int(np.count_nonzero(hit_active | miss_active))

    hit_time = float(np.mean(he - hs))
    c_h = float(hit_conc[hit_active].sum() / hit_active_cycles) if hit_active_cycles else 1.0
    c_m_sum = int(miss_conc[pure_cycle].sum())
    c_m = float(c_m_sum / pure_miss_cycles) if pure_miss_cycles else 1.0
    cm_conv = (
        float(miss_conc[miss_active].sum() / miss_active_cycles) if miss_active_cycles else 1.0
    )

    # Per-access pure miss cycles: |miss interval| minus the hit-active
    # cycles it overlaps, via a prefix sum over the hit-active mask.
    miss_len = me - ms
    is_miss = miss_len > 0
    miss_count = int(np.count_nonzero(is_miss))
    amp = float(miss_len[is_miss].mean()) if miss_count else 0.0

    if miss_count:
        prefix = np.concatenate(([0], np.cumsum(hit_active.astype(np.int64))))
        s_idx = np.clip(ms - lo, 0, hi - lo)
        e_idx = np.clip(me - lo, 0, hi - lo)
        overlapped = prefix[e_idx] - prefix[s_idx]
        pure_per_access = np.where(is_miss, miss_len - overlapped, 0)
        pure_mask = pure_per_access > 0
        pure_miss_count = int(np.count_nonzero(pure_mask))
        pamp = (
            float(pure_per_access[pure_mask].sum() / pure_miss_count)
            if pure_miss_count
            else 0.0
        )
    else:
        pure_miss_count = 0
        pamp = 0.0

    return LayerMeasurement(
        accesses=n,
        hit_time=hit_time,
        hit_concurrency=c_h,
        miss_count=miss_count,
        miss_rate=miss_count / n,
        avg_miss_penalty=amp,
        miss_concurrency=cm_conv,
        pure_miss_count=pure_miss_count,
        pure_miss_rate=pure_miss_count / n,
        pure_miss_penalty=pamp,
        pure_miss_concurrency=c_m,
        hit_active_cycles=hit_active_cycles,
        miss_active_cycles=miss_active_cycles,
        pure_miss_cycles=pure_miss_cycles,
        active_cycles=active_cycles,
    )


class HitConcurrencyDetector:
    """Streaming HCD (paper Fig. 4): counts hit activity cycle by cycle.

    The hardware analogue is a set of lightweight counters attached to the
    cache's hit path.  Feed it the number of accesses in their hit-operation
    phase each cycle via :meth:`observe`; it accumulates the totals needed
    for ``C_H`` and answers "does this cycle have hit activity?" queries
    from the MCD.
    """

    def __init__(self) -> None:
        self.hit_active_cycles = 0
        self.hit_concurrency_sum = 0
        self._last_had_hit = False

    def observe(self, hits_in_flight: int) -> bool:
        """Record one cycle; returns whether the cycle had hit activity."""
        if hits_in_flight < 0:
            raise ValueError("hits_in_flight must be >= 0")
        had_hit = hits_in_flight > 0
        if had_hit:
            self.hit_active_cycles += 1
            self.hit_concurrency_sum += hits_in_flight
        self._last_had_hit = had_hit
        return had_hit

    @property
    def hit_concurrency(self) -> float:
        """``C_H`` over the observed window (1.0 if no hit activity yet)."""
        if self.hit_active_cycles == 0:
            return 1.0
        return self.hit_concurrency_sum / self.hit_active_cycles

    def reset(self) -> None:
        """Clear counters (used at measurement-interval boundaries)."""
        self.hit_active_cycles = 0
        self.hit_concurrency_sum = 0
        self._last_had_hit = False


class MissConcurrencyDetector:
    """Streaming MCD (paper Fig. 4): classifies miss cycles as pure/overlapped.

    Each cycle it receives the number of misses in flight and consults the
    HCD's same-cycle answer; a cycle with misses but no hit activity is a
    *pure miss cycle*.  Per-access pure-miss attribution is done by the
    caller tagging which access ids are in flight (see
    :class:`CAMATAnalyzer`); the MCD itself keeps the aggregate counters for
    ``C_M`` and the pure-cycle total for ``pAMP``.
    """

    def __init__(self) -> None:
        self.pure_miss_cycles = 0
        self.pure_concurrency_sum = 0
        self.miss_active_cycles = 0
        self.miss_concurrency_sum = 0

    def observe(self, misses_in_flight: int, cycle_has_hit: bool) -> bool:
        """Record one cycle; returns whether the cycle was a pure miss cycle."""
        if misses_in_flight < 0:
            raise ValueError("misses_in_flight must be >= 0")
        if misses_in_flight == 0:
            return False
        self.miss_active_cycles += 1
        self.miss_concurrency_sum += misses_in_flight
        if cycle_has_hit:
            return False
        self.pure_miss_cycles += 1
        self.pure_concurrency_sum += misses_in_flight
        return True

    @property
    def pure_miss_concurrency(self) -> float:
        """``C_M`` over the observed window (1.0 if no pure cycles yet)."""
        if self.pure_miss_cycles == 0:
            return 1.0
        return self.pure_concurrency_sum / self.pure_miss_cycles

    @property
    def miss_concurrency(self) -> float:
        """Conventional ``Cm`` over the observed window."""
        if self.miss_active_cycles == 0:
            return 1.0
        return self.miss_concurrency_sum / self.miss_active_cycles

    def reset(self) -> None:
        """Clear counters (used at measurement-interval boundaries)."""
        self.pure_miss_cycles = 0
        self.pure_concurrency_sum = 0
        self.miss_active_cycles = 0
        self.miss_concurrency_sum = 0


class CAMATAnalyzer:
    """Cycle-stepped reference analyzer combining an HCD and an MCD.

    This walks cycles explicitly (O(span) per layer) and is therefore the
    slow-but-obviously-correct reference implementation; the vectorized
    :func:`measure_layer` is validated against it in the test suite.  It is
    also the component the LPM algorithm instantiates per measurement
    interval when operating online.
    """

    def __init__(self) -> None:
        self.hcd = HitConcurrencyDetector()
        self.mcd = MissConcurrencyDetector()
        self._hit_intervals: list[tuple[int, int]] = []
        self._miss_intervals: list[tuple[int, int]] = []

    def add_access(
        self, hit_start: int, hit_end: int, miss_start: int = 0, miss_end: int = 0
    ) -> None:
        """Register one access's hit interval and optional miss interval."""
        if hit_end <= hit_start:
            raise ValueError("hit interval must be non-empty")
        if miss_end < miss_start:
            raise ValueError("miss interval end must be >= start")
        self._hit_intervals.append((hit_start, hit_end))
        self._miss_intervals.append((miss_start, miss_end))

    @satisfies(
        "cycle_conservation", "pure_subset", "rate_bounds", "concurrency_floor",
        "eq2_identity", "eq3_apc_inverse", "finite_layer",
    )
    def run(self) -> LayerMeasurement:
        """Replay all registered accesses cycle by cycle and measure.

        Mirrors the hardware: for each cycle the HCD observes hit activity
        first, then the MCD classifies the cycle using the HCD's answer.
        """
        self.hcd.reset()
        self.mcd.reset()
        n = len(self._hit_intervals)
        if n == 0:
            return measure_layer([], [], [], [])
        lo = min(s for s, _ in self._hit_intervals)
        hi = max(e for _, e in self._hit_intervals)
        for s, e in self._miss_intervals:
            if e > s:
                lo = min(lo, s)
                hi = max(hi, e)

        pure_per_access = [0] * n
        hit_cycles_total = 0
        active_cycles = 0
        for cycle in range(lo, hi):
            hits = sum(1 for s, e in self._hit_intervals if s <= cycle < e)
            misses = sum(1 for s, e in self._miss_intervals if s <= cycle < e)
            has_hit = self.hcd.observe(hits)
            is_pure = self.mcd.observe(misses, has_hit)
            if hits or misses:
                active_cycles += 1
            hit_cycles_total += hits
            if is_pure:
                for i, (s, e) in enumerate(self._miss_intervals):
                    if s <= cycle < e:
                        pure_per_access[i] += 1

        miss_lens = [e - s for s, e in self._miss_intervals]
        miss_count = sum(1 for ln in miss_lens if ln > 0)
        pure_misses = [p for p in pure_per_access if p > 0]
        pure_miss_count = len(pure_misses)
        return LayerMeasurement(
            accesses=n,
            hit_time=sum(e - s for s, e in self._hit_intervals) / n,
            hit_concurrency=self.hcd.hit_concurrency,
            miss_count=miss_count,
            miss_rate=miss_count / n,
            avg_miss_penalty=(
                sum(ln for ln in miss_lens if ln > 0) / miss_count if miss_count else 0.0
            ),
            miss_concurrency=self.mcd.miss_concurrency,
            pure_miss_count=pure_miss_count,
            pure_miss_rate=pure_miss_count / n,
            pure_miss_penalty=(sum(pure_misses) / pure_miss_count if pure_miss_count else 0.0),
            pure_miss_concurrency=self.mcd.pure_miss_concurrency,
            hit_active_cycles=self.hcd.hit_active_cycles,
            miss_active_cycles=self.mcd.miss_active_cycles,
            pure_miss_cycles=self.mcd.pure_miss_cycles,
            active_cycles=active_cycles,
        )
