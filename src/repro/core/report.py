"""Human-readable reports for model measurements and algorithm runs.

These renderers back the benchmark harness output: every reproduced table
prints through :func:`render_table`, so rows line up with the paper's
layout and regenerating an experiment yields a directly comparable text
artifact.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.algorithm import LPMRunResult
from repro.core.analyzer import LayerMeasurement
from repro.core.lpm import LPMRReport

__all__ = [
    "render_table",
    "format_layer_measurement",
    "format_lpmr_report",
    "format_run_result",
]


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    float_fmt: str = "{:.4g}",
    title: str | None = None,
) -> str:
    """Render rows as a fixed-width text table.

    Floats are formatted with *float_fmt*; everything else with ``str``.
    """
    def fmt(cell: object) -> str:
        if isinstance(cell, bool):
            return str(cell)
        if isinstance(cell, float):
            return float_fmt.format(cell)
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    ncols = len(headers)
    for i, row in enumerate(str_rows):
        if len(row) != ncols:
            raise ValueError(f"row {i} has {len(row)} cells, expected {ncols}")
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in str_rows)) if str_rows else len(headers[c])
        for c in range(ncols)
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_layer_measurement(name: str, m: LayerMeasurement) -> str:
    """One layer's C-AMAT parameter set as a labelled block."""
    rows = [
        ("accesses", m.accesses),
        ("H (hit time)", m.hit_time),
        ("C_H", m.hit_concurrency),
        ("MR", m.miss_rate),
        ("AMP", m.avg_miss_penalty),
        ("Cm", m.miss_concurrency),
        ("pMR", m.pure_miss_rate),
        ("pAMP", m.pure_miss_penalty),
        ("C_M", m.pure_miss_concurrency),
        ("eta", m.eta),
        ("APC", m.apc),
        ("C-AMAT", m.camat),
        ("AMAT", m.amat),
    ]
    return render_table(["parameter", "value"], rows, title=f"[{name}]")


def format_lpmr_report(report: LPMRReport, *, title: str = "LPM matching snapshot") -> str:
    """The three LPMRs plus the processor-side context, as a table."""
    rows = [
        ("LPMR1 (ALU&FPU, L1)", report.lpmr1),
        ("LPMR2 (L1, LLC)", report.lpmr2),
        ("LPMR3 (LLC, MM)", report.lpmr3),
        ("C-AMAT1", report.camat1),
        ("C-AMAT2", report.camat2),
        ("C-AMAT3", report.camat3),
        ("MR1", report.mr1),
        ("MR2", report.mr2),
        ("f_mem", report.f_mem),
        ("CPI_exe", report.cpi_exe),
        ("overlapRatio_cm", report.overlap_ratio_cm),
        ("eta (combined)", report.eta_combined),
        ("predicted stall/instr", report.predicted_stall_per_instruction()),
        ("stall as % of CPI_exe", 100.0 * report.predicted_stall_fraction_of_compute()),
    ]
    return render_table(["quantity", "value"], rows, title=title)


def format_run_result(result: LPMRunResult) -> str:
    """LPM algorithm run history in the Table-I walk layout."""
    rows = []
    for step in result.steps:
        rows.append(
            (
                step.index,
                step.config_label,
                f"Case {step.case.value}",
                step.report.lpmr1,
                step.thresholds.t1,
                step.report.lpmr2,
                step.thresholds.t2,
                "yes" if step.action_taken else "no",
            )
        )
    table = render_table(
        ["step", "configuration", "case", "LPMR1", "T1", "LPMR2", "T2", "acted"],
        rows,
        title=f"LPM algorithm run — status: {result.status.value}",
    )
    return table
