"""Online, interval-driven LPM optimization (Section IV + Section V).

"Note that all the steps are conducted on-line to adapt to the dynamic
behavior of the applications.  The LPMR reduction algorithm is called
periodically for each time interval."  This module makes that concrete on
top of the simulator:

* the running application (a trace) is executed in *measurement intervals*
  of a fixed instruction count;
* after each interval, the C-AMAT analyzer measures the interval's records
  and the Fig. 3 case logic classifies it;
* a :class:`KnobPolicy` maps the case to a reconfiguration (upgrade L1/L2
  supply knobs, or trim over-provision), which is applied through
  :meth:`~repro.sim.engine.HierarchySimulator.reconfigure` — cache contents
  and the global timeline survive, and each reconfiguration costs the
  configured number of cycles (the paper uses 4 cycles per hardware
  reconfiguration operation);
* the run continues on the new configuration from where it stopped.

The resulting :class:`OnlineRunResult` carries the per-interval history
(configuration, case, LPMR1, stall) plus aggregate cost-efficiency
numbers, so online adaptation can be compared against any static
configuration (see ``benchmarks/bench_online_adaptation.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.core.algorithm import LPMCase, classify_case
from repro.core.lpm import LPMRReport, MatchingThresholds
from repro.reconfig.space import L1_KNOBS, L2_KNOBS, DesignPoint, DesignSpace
from repro.runtime.errors import MeasurementError
from repro.runtime.guards import ensure_finite_stats
from repro.sim.engine import HierarchySimulator
from repro.sim.params import MachineConfig
from repro.sim.stats import measure_hierarchy
from repro.util.validation import check_int, check_positive
from repro.workloads.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.faults import FaultInjector

__all__ = ["KnobPolicy", "LadderKnobPolicy", "IntervalRecord", "OnlineRunResult",
           "OnlineLPMController"]


class KnobPolicy:
    """Maps an algorithm case to the next design point.

    Subclass and override :meth:`next_point`; the default implementation
    raises.  Policies must stay inside the provided design space.
    """

    def next_point(
        self, space: DesignSpace, point: DesignPoint, case: LPMCase
    ) -> DesignPoint | None:
        """Return the next point, or ``None`` to keep the current one."""
        raise NotImplementedError


class LadderKnobPolicy(KnobPolicy):
    """One ladder rung per decision, on the knobs the case calls for.

    Case I upgrades one L1-supply knob and one L2-supply knob; Case II one
    L1-supply knob; Case III downgrades the knob with the largest cost
    saving.  Knobs are upgraded round-robin so repeated Case I intervals
    spread the parallelism across resources, mirroring the paper's
    incremental A -> E bundles.
    """

    def __init__(self) -> None:
        self._l1_cursor = 0

    def _upgrade_one(
        self, space: DesignSpace, point: DesignPoint, knobs: tuple[str, ...],
        cursor: int,
    ) -> tuple[DesignPoint | None, int]:
        for i in range(len(knobs)):
            knob = knobs[(cursor + i) % len(knobs)]
            nxt = space.upgrade(point, knob)
            if nxt is not None:
                return nxt, (cursor + i + 1) % len(knobs)
        return None, cursor

    def next_point(
        self, space: DesignSpace, point: DesignPoint, case: LPMCase
    ) -> DesignPoint | None:
        if case is LPMCase.MATCHED:
            return None
        if case is LPMCase.DEPROVISION:
            candidates = space.downgrade_candidates(point)
            return candidates[0][1] if candidates else None
        upgraded, self._l1_cursor = self._upgrade_one(
            space, point, L1_KNOBS, self._l1_cursor
        )
        if upgraded is None:
            return None
        if case is LPMCase.OPTIMIZE_BOTH:
            with_l2, _ = self._upgrade_one(space, upgraded, L2_KNOBS, 0)
            if with_l2 is not None:
                return with_l2
        return upgraded


@dataclass(frozen=True)
class IntervalRecord:
    """Measurement and decision of one interval."""

    index: int
    config_label: str
    case: LPMCase
    report: LPMRReport
    thresholds: MatchingThresholds
    cycles: int
    reconfigured: bool
    hardware_cost: float

    @property
    def stall_fraction(self) -> float:
        """Interval stall as a fraction of CPI_exe."""
        return self.report.predicted_stall_fraction_of_compute()


@dataclass
class OnlineRunResult:
    """History and aggregates of one online-controlled execution."""

    intervals: list[IntervalRecord] = field(default_factory=list)
    total_cycles: int = 0
    reconfigurations: int = 0
    reconfiguration_cycles: int = 0
    instructions: int = 0
    #: Intervals whose measurement failed validation (non-finite statistics,
    #: dropped interval reports, truncated measurements) and were discarded
    #: without a reconfiguration decision.
    rejected_intervals: int = 0
    #: Actionable classifications suppressed by the cooldown/confirmation
    #: hysteresis rather than applied.
    held_reconfigurations: int = 0

    @property
    def cpi(self) -> float:
        """End-to-end CPI including reconfiguration overhead."""
        return self.total_cycles / self.instructions if self.instructions else 0.0

    @property
    def mean_hardware_cost(self) -> float:
        """Cycle-weighted average hardware cost (cost-efficiency numerator).

        Degenerate runs (no valid intervals, or intervals that accumulated
        zero cycles) report 0.0 rather than dividing by zero — a fully
        rejected run must not crash downstream cost-efficiency reporting.
        """
        interval_cycles = sum(r.cycles for r in self.intervals)
        if interval_cycles == 0:
            return 0.0
        weighted = sum(r.hardware_cost * r.cycles for r in self.intervals)
        return weighted / interval_cycles

    def cases(self) -> list[str]:
        """Case labels per interval (for trajectory inspection)."""
        return [r.case.value for r in self.intervals]


class OnlineLPMController:
    """Periodic measure -> classify -> reconfigure loop over one execution.

    Parameters
    ----------
    space:
        Design space constraining the reconfigurations (the paper's
        reconfigurable architecture).
    start:
        Initial design point (defaults to the weakest configuration).
    interval_instructions:
        Measurement interval length.  The paper studies interval size in
        *cycles*; instruction-count intervals are the natural equivalent in
        a trace-driven setting (the analyzer windows are what matter).
    delta_percent:
        Stall target for the thresholds (Eqs. 14-15).
    reconfiguration_cost:
        Cycles charged per applied reconfiguration (the paper: 4 cycles
        per hardware reconfiguration, 40 per scheduling operation).
    policy:
        Knob policy; defaults to :class:`LadderKnobPolicy`.
    cooldown_intervals:
        After an applied reconfiguration, hold any further reconfiguration
        for this many intervals (0 reproduces the eager paper loop).
    confirm_intervals:
        Require the same actionable case for this many consecutive valid
        intervals before acting on it (1 acts immediately).  Together with
        the cooldown this is the anti-thrashing hysteresis: one corrupted
        or atypical interval cannot flip the configuration.
    fault_injector:
        Optional :class:`~repro.runtime.faults.FaultInjector` corrupting
        the per-interval measurements (testing/chaos knob).  Corrupted
        intervals are rejected by the guards and counted in
        :attr:`OnlineRunResult.rejected_intervals`; the controller keeps
        running on its last-good configuration.
    """

    def __init__(
        self,
        space: DesignSpace,
        *,
        start: DesignPoint | None = None,
        interval_instructions: int = 4000,
        delta_percent: float = 150.0,
        delta_slack_fraction: float = 0.5,
        reconfiguration_cost: int = 4,
        policy: KnobPolicy | None = None,
        seed: int = 0,
        cooldown_intervals: int = 0,
        confirm_intervals: int = 1,
        fault_injector: "FaultInjector | None" = None,
    ) -> None:
        check_int("interval_instructions", interval_instructions, minimum=1)
        check_positive("delta_percent", delta_percent)
        check_positive("delta_slack_fraction", delta_slack_fraction)
        check_int("reconfiguration_cost", reconfiguration_cost, minimum=0)
        check_int("cooldown_intervals", cooldown_intervals, minimum=0)
        check_int("confirm_intervals", confirm_intervals, minimum=1)
        self.space = space
        self.point = start if start is not None else space.minimum_point()
        space.validate(self.point)
        self.interval_instructions = interval_instructions
        self.delta_percent = delta_percent
        self.delta_slack_fraction = delta_slack_fraction
        self.reconfiguration_cost = reconfiguration_cost
        self.policy = policy if policy is not None else LadderKnobPolicy()
        self.seed = seed
        self.cooldown_intervals = cooldown_intervals
        self.confirm_intervals = confirm_intervals
        self.fault_injector = fault_injector

    def _config(self) -> MachineConfig:
        return self.space.to_machine(self.point)

    def run(self, trace: Trace, *, adapt: bool = True) -> OnlineRunResult:
        """Execute *trace* under interval-driven control.

        ``adapt=False`` runs the same interval pipeline without ever
        reconfiguring — the static baseline with identical measurement
        windows (useful for apples-to-apples comparison).
        """
        result = OnlineRunResult()
        sim = HierarchySimulator(self._config(), seed=self.seed)
        sim.warm_caches(trace)
        clock = 0
        n = trace.n_instructions
        index = 0
        cooldown_remaining = 0
        streak_case: LPMCase | None = None
        streak_len = 0
        for lo in range(0, n, self.interval_instructions):
            window = trace.slice(lo, min(lo + self.interval_instructions, n))
            if window.n_instructions == 0:
                break
            # CPI_exe of the window on the *current* core parameters.
            perfect = HierarchySimulator(self._config(), seed=self.seed).run(
                window, perfect=True
            )
            chunk = sim.run(window, start_cycle=clock)
            stats = measure_hierarchy(chunk, cpi_exe=perfect.cpi)
            cycles = chunk.total_cycles
            clock += cycles
            try:
                if self.fault_injector is not None:
                    stats = self._inject_interval_faults(stats, window)
                ensure_finite_stats(
                    stats, expected_instructions=window.n_instructions
                )
            except MeasurementError:
                # The interval executed (its cycles count) but its report is
                # garbage: no record, no decision, keep the last-good
                # configuration, and restart the confirmation streak.
                result.rejected_intervals += 1
                streak_case, streak_len = None, 0
                index += 1
                continue
            report = stats.lpmr_report()
            thresholds = report.thresholds(self.delta_percent)
            delta = thresholds.t1 * self.delta_slack_fraction
            case = classify_case(report, thresholds, delta)

            # The record describes the configuration the interval ran on.
            label = self.point.label()
            cost = self.point.cost()
            reconfigured = False
            if adapt:
                if case is streak_case:
                    streak_len += 1
                else:
                    streak_case, streak_len = case, 1
                actionable = case is not LPMCase.MATCHED
                if actionable and (
                    cooldown_remaining > 0 or streak_len < self.confirm_intervals
                ):
                    result.held_reconfigurations += 1
                else:
                    nxt = self.policy.next_point(self.space, self.point, case)
                    if nxt is not None and nxt != self.point:
                        self.point = nxt
                        sim.reconfigure(self._config())
                        clock += self.reconfiguration_cost
                        result.reconfigurations += 1
                        result.reconfiguration_cycles += self.reconfiguration_cost
                        reconfigured = True
                if reconfigured:
                    cooldown_remaining = self.cooldown_intervals
                    streak_case, streak_len = None, 0
                elif cooldown_remaining:
                    cooldown_remaining -= 1

            result.intervals.append(
                IntervalRecord(
                    index=index,
                    config_label=label,
                    case=case,
                    report=report,
                    thresholds=thresholds,
                    cycles=cycles,
                    reconfigured=reconfigured,
                    hardware_cost=cost,
                )
            )
            index += 1
        result.total_cycles = clock
        result.instructions = n
        return result

    def _inject_interval_faults(
        self, stats: "HierarchyStats", window: Trace
    ) -> "HierarchyStats":
        """Apply the configured fault injector to one interval's report.

        Exceptions fire directly; a ``truncate`` fault is emulated on the
        *report* (the interval already ran) by shrinking its instruction
        count, which the guards catch via the expected-count check.
        """
        injector = self.fault_injector
        injector.maybe_fail()
        short = injector.corrupt_trace(window)
        if short.n_instructions != window.n_instructions:
            stats = replace(stats, n_instructions=short.n_instructions)
        return injector.corrupt_stats(stats)
