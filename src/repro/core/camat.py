"""The C-AMAT model (Sun & Wang) and the classic AMAT model it extends.

This module implements Section II of the paper:

* Eq. (1)  ``AMAT = H + MR * AMP``
* Eq. (2)  ``C-AMAT = H/C_H + pMR * pAMP/C_M``
* Eq. (3)  ``C-AMAT = 1/APC``
* Eq. (4)  ``C-AMAT_1 = H1/C_H1 + pMR1 * eta1 * C-AMAT_2`` with
  ``eta1 = (pAMP1/AMP1) * (Cm1/C_M1)``

Terminology (paper Section II):

hit concurrency ``C_H``
    Average number of concurrent hit activities per hit-active cycle.
pure miss
    A miss that contains at least one cycle with no concurrent hit activity
    anywhere in the same cache layer.  Only pure misses stall the processor.
pure miss rate ``pMR``
    Pure misses over total accesses (``pMR <= MR``).
average pure miss penalty ``pAMP``
    Average number of *pure* miss cycles per pure miss.
pure miss concurrency ``C_M``
    Average number of concurrent pure-miss activities per pure-miss cycle.
conventional miss concurrency ``Cm``
    Average number of concurrent (any) miss activities per miss-active cycle.

The dataclasses here are *value objects*: they hold measured or hypothesised
parameters and evaluate the closed-form model.  Measurement of the
parameters from simulated execution lives in :mod:`repro.core.analyzer`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.util.validation import check_at_least, check_fraction, check_non_negative, check_positive

__all__ = [
    "AMATParams",
    "CAMATParams",
    "amat",
    "camat",
    "camat_from_apc",
    "apc_from_camat",
    "eta",
    "recursive_camat",
    "CAMATStack",
]


@dataclass(frozen=True)
class AMATParams:
    """Parameters of the classic AMAT model, Eq. (1).

    Attributes
    ----------
    hit_time:
        ``H`` — cache hit latency in cycles.
    miss_rate:
        ``MR`` — misses over total accesses, in [0, 1].
    avg_miss_penalty:
        ``AMP`` — sum of all miss access latencies divided by the number of
        misses, in cycles.
    """

    hit_time: float
    miss_rate: float
    avg_miss_penalty: float

    def __post_init__(self) -> None:
        check_positive("hit_time", self.hit_time)
        check_fraction("miss_rate", self.miss_rate)
        check_non_negative("avg_miss_penalty", self.avg_miss_penalty)

    @property
    def value(self) -> float:
        """``AMAT = H + MR * AMP`` (Eq. 1)."""
        return self.hit_time + self.miss_rate * self.avg_miss_penalty


@dataclass(frozen=True)
class CAMATParams:
    """Parameters of the C-AMAT model, Eq. (2).

    Attributes
    ----------
    hit_time:
        ``H`` — hit latency in cycles (same meaning as in AMAT).
    hit_concurrency:
        ``C_H`` — average hit concurrency, >= 1 whenever there is any hit
        activity (a hit-active cycle has at least one hit in flight).
    pure_miss_rate:
        ``pMR`` — pure misses over total accesses, in [0, 1].
    pure_miss_penalty:
        ``pAMP`` — average number of pure miss cycles per pure miss.
    pure_miss_concurrency:
        ``C_M`` — average pure-miss concurrency, >= 1 whenever any pure miss
        exists.
    """

    hit_time: float
    hit_concurrency: float
    pure_miss_rate: float
    pure_miss_penalty: float
    pure_miss_concurrency: float

    def __post_init__(self) -> None:
        check_positive("hit_time", self.hit_time)
        check_at_least("hit_concurrency", self.hit_concurrency, 1.0)
        check_fraction("pure_miss_rate", self.pure_miss_rate)
        check_non_negative("pure_miss_penalty", self.pure_miss_penalty)
        check_at_least("pure_miss_concurrency", self.pure_miss_concurrency, 1.0)

    @property
    def value(self) -> float:
        """``C-AMAT = H/C_H + pMR * pAMP/C_M`` (Eq. 2)."""
        return (
            self.hit_time / self.hit_concurrency
            + self.pure_miss_rate * self.pure_miss_penalty / self.pure_miss_concurrency
        )

    @property
    def hit_component(self) -> float:
        """The concurrency-adjusted hit term ``H/C_H``."""
        return self.hit_time / self.hit_concurrency

    @property
    def miss_component(self) -> float:
        """The concurrency-adjusted pure-miss term ``pMR * pAMP/C_M``."""
        return self.pure_miss_rate * self.pure_miss_penalty / self.pure_miss_concurrency

    def with_(self, **changes: float) -> "CAMATParams":
        """Return a copy with selected parameters replaced.

        Convenience for what-if analysis along the five optimization
        dimensions the paper identifies (H, C_H, pMR, pAMP, C_M).
        """
        return replace(self, **changes)

    def degenerate_amat(self, miss_rate: float, avg_miss_penalty: float) -> AMATParams:
        """The AMAT special case reached when concurrency is absent.

        C-AMAT contains AMAT as a special case: with ``C_H = C_M = 1`` every
        miss is a pure miss (``pMR = MR``) and every miss cycle is a pure
        miss cycle (``pAMP = AMP``).
        """
        return AMATParams(self.hit_time, miss_rate, avg_miss_penalty)


def amat(hit_time: float, miss_rate: float, avg_miss_penalty: float) -> float:
    """Evaluate Eq. (1): ``AMAT = H + MR * AMP``."""
    return AMATParams(hit_time, miss_rate, avg_miss_penalty).value


def camat(
    hit_time: float,
    hit_concurrency: float,
    pure_miss_rate: float,
    pure_miss_penalty: float,
    pure_miss_concurrency: float,
) -> float:
    """Evaluate Eq. (2): ``C-AMAT = H/C_H + pMR * pAMP/C_M``."""
    return CAMATParams(
        hit_time, hit_concurrency, pure_miss_rate, pure_miss_penalty, pure_miss_concurrency
    ).value


def camat_from_apc(apc: float) -> float:
    """Eq. (3): ``C-AMAT = 1/APC``.

    APC (Accesses Per memory-active Cycle) is the direct measurement of
    C-AMAT; the five parameters of Eq. (2) are for analysis, not
    measurement.
    """
    check_positive("apc", apc)
    return 1.0 / apc


def apc_from_camat(camat_value: float) -> float:
    """Inverse of Eq. (3): ``APC = 1/C-AMAT``."""
    check_positive("camat_value", camat_value)
    return 1.0 / camat_value


def eta(
    pure_miss_penalty: float,
    avg_miss_penalty: float,
    miss_concurrency: float,
    pure_miss_concurrency: float,
) -> float:
    """The layer-coupling factor ``eta = (pAMP/AMP) * (Cm/C_M)`` of Eq. (4).

    ``eta`` reflects the difference between pure misses and conventional
    misses: the fraction of the lower layer's latency that actually reaches
    the upper layer's stall behaviour after hit/miss overlapping.  It is in
    ``(0, 1]`` for any physically realizable measurement (pure miss cycles
    are a subset of miss cycles and pure-miss phases are at least as
    concurrent as they are counted).
    """
    check_non_negative("pure_miss_penalty", pure_miss_penalty)
    check_positive("avg_miss_penalty", avg_miss_penalty)
    check_positive("miss_concurrency", miss_concurrency)
    check_positive("pure_miss_concurrency", pure_miss_concurrency)
    return (pure_miss_penalty / avg_miss_penalty) * (miss_concurrency / pure_miss_concurrency)


def recursive_camat(
    upper: CAMATParams,
    eta_upper: float,
    lower_camat: float,
) -> float:
    """Eq. (4): ``C-AMAT_1 = H1/C_H1 + pMR1 * eta1 * C-AMAT_2``.

    Parameters
    ----------
    upper:
        C-AMAT parameters measured at the upper layer (e.g. L1).  Only its
        hit term and pure miss rate are used; the penalty term is replaced
        by the recursive expression.
    eta_upper:
        The coupling factor ``eta1`` of the upper layer (see :func:`eta`).
    lower_camat:
        ``C-AMAT_2`` of the layer below (e.g. L2), in upper-layer cycles.
    """
    check_non_negative("eta_upper", eta_upper)
    check_non_negative("lower_camat", lower_camat)
    return upper.hit_component + upper.pure_miss_rate * eta_upper * lower_camat


@dataclass(frozen=True)
class CAMATStack:
    """A full per-layer C-AMAT decomposition of a memory hierarchy.

    Holds the measured :class:`CAMATParams` of each layer (index 0 = L1)
    together with the per-layer miss rates and coupling factors, and checks /
    exposes the recursive relation Eq. (4) across the stack.
    """

    layers: tuple[CAMATParams, ...]
    miss_rates: tuple[float, ...]
    etas: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError("CAMATStack requires at least one layer")
        if len(self.miss_rates) != len(self.layers):
            raise ValueError(
                f"need one miss rate per layer: {len(self.miss_rates)} != {len(self.layers)}"
            )
        if len(self.etas) != len(self.layers) - 1:
            raise ValueError(
                f"need one eta per adjacent layer pair: {len(self.etas)} != {len(self.layers) - 1}"
            )
        for i, mr in enumerate(self.miss_rates):
            check_fraction(f"miss_rates[{i}]", mr)
        for i, e in enumerate(self.etas):
            check_non_negative(f"etas[{i}]", e)

    @property
    def depth(self) -> int:
        """Number of layers in the hierarchy."""
        return len(self.layers)

    def camat_of(self, layer: int) -> float:
        """Direct Eq. (2) C-AMAT of *layer* (0-based, 0 = L1)."""
        return self.layers[layer].value

    def recursive_camat_of(self, layer: int) -> float:
        """Eq. (4) C-AMAT of *layer*, expanded recursively to the bottom.

        The bottom layer's C-AMAT is its direct Eq. (2) value; every layer
        above substitutes its penalty term with
        ``pMR * eta * C-AMAT(next layer)``.
        """
        value = self.layers[-1].value
        for i in range(self.depth - 2, layer - 1, -1):
            value = recursive_camat(self.layers[i], self.etas[i], value)
        return value

    def top_camat(self) -> float:
        """The application-visible C-AMAT (layer 0), via the recursion."""
        return self.recursive_camat_of(0)
