"""Phase behaviour and the measurement-interval study (Section V, E7).

The paper: "programs have periodic behaviors, and their data access patterns
are predictable"; the LPM algorithm is invoked per measurement interval and
must *perceive* a burst of data accesses (a full measurement interval falls
inside the burst) and *process* it *timely* (the reconfiguration/scheduling
cost is paid before the burst ends).  The paper reports that with a
reconfiguration cost of 4 cycles, intervals of 10 and 20 cycles catch 96%
and 89% of bursts; the software path (40-cycle scheduling cost) at a
40-cycle interval catches 73%.

This module provides:

* :func:`generate_bursts` — a stochastic burst timeline (lognormal
  durations, exponential gaps) standing in for SPEC phase behaviour
  (Sherwood et al.'s periodic program phases);
* :class:`IntervalDetector` — the interval-based perception model: a burst
  is caught iff some interval boundary starts a full measurement interval
  inside it and the reaction cost still fits;
* :func:`detection_rate` — the E7 sweep quantity;
* :func:`bursty_trace` — an instruction trace whose memory intensity
  alternates between quiet and burst phases, for end-to-end simulator runs.

The default duration distribution (median ~258 cycles, sigma 1.6) is
calibrated so the three paper operating points land within a few percent —
see EXPERIMENTS.md (E7).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import make_rng
from repro.util.validation import check_int, check_positive
from repro.workloads.trace import Trace

__all__ = [
    "Burst",
    "generate_bursts",
    "IntervalDetector",
    "detection_rate",
    "bursty_trace",
    "DEFAULT_DURATION_MU",
    "DEFAULT_DURATION_SIGMA",
]

#: Lognormal parameters of burst durations (cycles), calibrated against the
#: paper's three (interval, cost, rate) operating points.
DEFAULT_DURATION_MU = 5.551
DEFAULT_DURATION_SIGMA = 1.6


@dataclass(frozen=True)
class Burst:
    """One burst of intensive data accesses: ``[start, start + duration)``."""

    start: int
    duration: int

    @property
    def end(self) -> int:
        """First cycle after the burst."""
        return self.start + self.duration


def generate_bursts(
    n_bursts: int,
    *,
    mean_gap: float = 500.0,
    duration_mu: float = DEFAULT_DURATION_MU,
    duration_sigma: float = DEFAULT_DURATION_SIGMA,
    seed: "int | np.random.Generator | None" = 0,
) -> list[Burst]:
    """Sample a burst timeline: exponential gaps, lognormal durations."""
    check_int("n_bursts", n_bursts, minimum=1)
    check_positive("mean_gap", mean_gap)
    rng = make_rng(seed)
    gaps = rng.exponential(mean_gap, n_bursts)
    durations = np.maximum(rng.lognormal(duration_mu, duration_sigma, n_bursts), 1.0)
    bursts = []
    t = 0.0
    for gap, dur in zip(gaps, durations):
        start = int(t + gap)
        bursts.append(Burst(start=start, duration=int(round(dur))))
        t = start + dur
    return bursts


class IntervalDetector:
    """Interval-based burst perception (the C-AMAT analyzer's sampling).

    The analyzer's counters are read every ``interval`` cycles; a burst is
    *perceived* when a complete measurement interval lies inside it, and
    *processed timely* when the reaction cost (reconfiguration: the paper
    uses 4 cycles; scheduling: 40 cycles) also completes before the burst
    ends.
    """

    def __init__(self, interval: int, reaction_cost: int) -> None:
        check_int("interval", interval, minimum=1)
        check_int("reaction_cost", reaction_cost, minimum=0)
        self.interval = interval
        self.reaction_cost = reaction_cost

    def perceives(self, burst: Burst) -> bool:
        """Whether some full measurement interval fits inside the burst."""
        first_boundary = -(-burst.start // self.interval) * self.interval
        return first_boundary + self.interval <= burst.end

    def processes_timely(self, burst: Burst) -> bool:
        """Perceived and reacted to before the burst ends."""
        first_boundary = -(-burst.start // self.interval) * self.interval
        return first_boundary + self.interval + self.reaction_cost <= burst.end


def detection_rate(bursts: "list[Burst]", interval: int, reaction_cost: int) -> float:
    """Fraction of bursts perceived and processed timely (the E7 metric)."""
    if not bursts:
        raise ValueError("need at least one burst")
    det = IntervalDetector(interval, reaction_cost)
    return sum(det.processes_timely(b) for b in bursts) / len(bursts)


def bursty_trace(
    n_mem: int,
    *,
    burst_intensity: int = 0,
    quiet_intensity: int = 8,
    burst_accesses: int = 40,
    quiet_accesses: int = 120,
    footprint_bytes: int = 4 << 20,
    name: str = "bursty",
    seed: int = 0,
) -> Trace:
    """A trace alternating quiet and burst phases of memory intensity.

    During a burst, memory accesses come back to back
    (``burst_intensity`` compute ops between them); during quiet phases
    they are spaced by ``quiet_intensity`` compute ops.  Addresses are
    random within *footprint_bytes* so bursts stress the miss path.
    """
    check_int("n_mem", n_mem, minimum=1)
    rng = make_rng(seed)
    gaps = np.empty(n_mem, dtype=np.int64)
    in_burst = False
    filled = 0
    while filled < n_mem:
        length = int(rng.integers(1, (burst_accesses if in_burst else quiet_accesses) + 1))
        length = min(length, n_mem - filled)
        gaps[filled : filled + length] = burst_intensity if in_burst else quiet_intensity
        filled += length
        in_burst = not in_burst
    n_lines = max(footprint_bytes // 64, 1)
    addresses = rng.integers(0, n_lines, n_mem) * 64
    return Trace.from_memory_addresses(
        addresses, compute_per_access=gaps, name=name, seed=seed
    )
