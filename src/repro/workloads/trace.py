"""Instruction/memory trace container.

A :class:`Trace` is the simulator's input: a program-ordered sequence of
instructions, each either a compute op or a memory access with a byte
address.  Arrays are plain numpy (column layout) for cheap generation,
slicing and statistics, per the repository's vectorization guidelines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Trace"]


@dataclass
class Trace:
    """Program-ordered instruction trace.

    Attributes
    ----------
    is_mem:
        Boolean per instruction — True for loads/stores.
    address:
        Byte address per instruction (ignored where ``is_mem`` is False).
    is_load:
        True for loads, False for stores (only meaningful where ``is_mem``).
    name:
        Workload label carried through to reports.
    """

    is_mem: np.ndarray
    address: np.ndarray
    is_load: np.ndarray
    name: str = "trace"
    metadata: dict = field(default_factory=dict)
    #: Optional per-instruction flag: a memory access with ``depends`` set
    #: cannot dispatch until the previous memory access's data returned
    #: (models pointer chasing / dependent loads, which bound memory-level
    #: parallelism regardless of hardware resources).
    depends: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.is_mem = np.asarray(self.is_mem, dtype=bool)
        self.address = np.asarray(self.address, dtype=np.int64)
        self.is_load = np.asarray(self.is_load, dtype=bool)
        n = self.is_mem.shape[0]
        if self.address.shape[0] != n or self.is_load.shape[0] != n:
            raise ValueError(
                "is_mem, address and is_load must have equal lengths: "
                f"{n}, {self.address.shape[0]}, {self.is_load.shape[0]}"
            )
        if self.depends is not None:
            self.depends = np.asarray(self.depends, dtype=bool)
            if self.depends.shape[0] != n:
                raise ValueError("depends must match the instruction count")
        if n and self.address[self.is_mem].size and np.any(self.address[self.is_mem] < 0):
            raise ValueError("addresses must be non-negative")

    # -- construction ------------------------------------------------------
    @classmethod
    def from_memory_addresses(
        cls,
        addresses: "np.ndarray | list[int]",
        *,
        compute_per_access: "np.ndarray | int" = 1,
        load_fraction: float = 1.0,
        name: str = "trace",
        seed: int | None = 0,
        depends: "np.ndarray | None" = None,
    ) -> "Trace":
        """Build a trace by interleaving compute ops between memory accesses.

        ``compute_per_access`` is either a scalar (uniform) or a per-access
        array of compute-instruction counts inserted *before* each access.
        ``load_fraction`` of the accesses are loads (chosen with *seed*).
        ``depends`` optionally marks which accesses depend on the previous
        memory access's result (per-access boolean array).
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        n_mem = addresses.shape[0]
        if np.isscalar(compute_per_access) or np.ndim(compute_per_access) == 0:
            gaps = np.full(n_mem, int(compute_per_access), dtype=np.int64)
        else:
            gaps = np.asarray(compute_per_access, dtype=np.int64)
            if gaps.shape[0] != n_mem:
                raise ValueError("compute_per_access must match the access count")
        if np.any(gaps < 0):
            raise ValueError("compute_per_access must be >= 0")
        if not 0.0 <= load_fraction <= 1.0:
            raise ValueError(f"load_fraction must be in [0, 1], got {load_fraction}")

        total = int(n_mem + gaps.sum())
        is_mem = np.zeros(total, dtype=bool)
        address = np.zeros(total, dtype=np.int64)
        # Memory instruction positions: after each gap of compute ops.
        mem_pos = np.cumsum(gaps + 1) - 1
        is_mem[mem_pos] = True
        address[mem_pos] = addresses
        rng = np.random.default_rng(seed)
        is_load = np.zeros(total, dtype=bool)
        if n_mem:
            is_load[mem_pos] = rng.random(n_mem) < load_fraction
        dep_full = None
        if depends is not None:
            depends = np.asarray(depends, dtype=bool)
            if depends.shape[0] != n_mem:
                raise ValueError("depends must match the access count")
            dep_full = np.zeros(total, dtype=bool)
            dep_full[mem_pos] = depends
        return cls(
            is_mem=is_mem, address=address, is_load=is_load, name=name, depends=dep_full
        )

    # -- basic statistics ----------------------------------------------------
    @property
    def n_instructions(self) -> int:
        """Total instruction count."""
        return int(self.is_mem.shape[0])

    @property
    def n_mem(self) -> int:
        """Number of memory instructions."""
        return int(np.count_nonzero(self.is_mem))

    @property
    def f_mem(self) -> float:
        """Fraction of instructions that access memory (the paper's f_mem)."""
        n = self.n_instructions
        return self.n_mem / n if n else 0.0

    @property
    def memory_addresses(self) -> np.ndarray:
        """Byte addresses of the memory instructions, in program order."""
        return self.address[self.is_mem]

    def footprint_bytes(self, line_bytes: int = 64) -> int:
        """Number of distinct cache lines touched, times the line size."""
        if self.n_mem == 0:
            return 0
        lines = np.unique(self.memory_addresses >> (line_bytes.bit_length() - 1))
        return int(lines.size) * line_bytes

    # -- manipulation ----------------------------------------------------
    def slice(self, start: int, stop: int) -> "Trace":
        """Sub-trace over instruction indices ``[start, stop)``."""
        return Trace(
            is_mem=self.is_mem[start:stop].copy(),
            address=self.address[start:stop].copy(),
            is_load=self.is_load[start:stop].copy(),
            name=f"{self.name}[{start}:{stop}]",
            metadata=dict(self.metadata),
            depends=self.depends[start:stop].copy() if self.depends is not None else None,
        )

    @classmethod
    def concatenate(cls, traces: "list[Trace]", name: str | None = None) -> "Trace":
        """Join traces back-to-back in program order."""
        if not traces:
            raise ValueError("need at least one trace")
        if any(t.depends is not None for t in traces):
            depends = np.concatenate(
                [
                    t.depends
                    if t.depends is not None
                    else np.zeros(t.n_instructions, dtype=bool)
                    for t in traces
                ]
            )
        else:
            depends = None
        return cls(
            is_mem=np.concatenate([t.is_mem for t in traces]),
            address=np.concatenate([t.address for t in traces]),
            is_load=np.concatenate([t.is_load for t in traces]),
            name=name if name is not None else "+".join(t.name for t in traces),
            depends=depends,
        )

    def __len__(self) -> int:
        return self.n_instructions

    # -- identity ----------------------------------------------------------
    def content_digest(self) -> str:
        """Hex SHA-256 of the trace *content* — the instruction arrays only.

        Two traces with identical ``is_mem``/``address``/``is_load``/
        ``depends`` columns share a digest regardless of ``name`` or
        ``metadata``; the digest is what the worker-resident trace store
        (:mod:`repro.runtime.trace_store`) and the persistent evaluation
        cache (:mod:`repro.runtime.evalcache`) key on.  Computed once and
        cached on the instance — traces are treated as immutable after
        construction; mutate the arrays and the cached digest goes stale.
        """
        cached = self.__dict__.get("_content_digest")
        if cached is not None:
            return cached
        import hashlib

        h = hashlib.sha256()
        h.update(b"trace-v1")
        for arr in (self.is_mem, self.address, self.is_load):
            h.update(np.ascontiguousarray(arr).tobytes())
        if self.depends is not None:
            h.update(b"|depends")
            h.update(np.ascontiguousarray(self.depends).tobytes())
        digest = h.hexdigest()
        self.__dict__["_content_digest"] = digest
        return digest

    # -- serialization -----------------------------------------------------
    def save(self, path: "str") -> None:
        """Write the trace to a compressed ``.npz`` file.

        Metadata values are stored as strings (json for non-strings), so a
        round trip preserves simple metadata; complex objects should be
        kept out of ``metadata`` if exact round-tripping matters.
        """
        import json

        meta_json = json.dumps(
            {k: v for k, v in self.metadata.items()}, default=str
        )
        arrays = dict(
            is_mem=self.is_mem,
            address=self.address,
            is_load=self.is_load,
            name=np.array(self.name),
            metadata=np.array(meta_json),
        )
        if self.depends is not None:
            arrays["depends"] = self.depends
        np.savez_compressed(path, **arrays)

    @classmethod
    def load(cls, path: "str") -> "Trace":
        """Read a trace written by :meth:`save`."""
        import json

        with np.load(path, allow_pickle=False) as data:
            metadata = json.loads(str(data["metadata"]))
            return cls(
                is_mem=data["is_mem"],
                address=data["address"],
                is_load=data["is_load"],
                name=str(data["name"]),
                metadata=metadata,
                depends=data["depends"] if "depends" in data.files else None,
            )

    def __repr__(self) -> str:
        return (
            f"Trace(name={self.name!r}, instructions={self.n_instructions}, "
            f"mem={self.n_mem}, f_mem={self.f_mem:.3f})"
        )
