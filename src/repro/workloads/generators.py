"""Synthetic address-stream kernels (the SPEC CPU2006 substitute).

Each kernel produces a numpy array of byte addresses with a controlled
locality/concurrency signature; :func:`mixture_addresses` interleaves
kernels per-access to compose benchmark-like behaviour, and
:class:`KernelSpec` describes one kernel declaratively so benchmark
profiles (:mod:`repro.workloads.spec`) are plain data.

Kernel vocabulary and the behaviours they model:

``strided``
    A sequential sweep over an array (stencil/streaming codes such as
    bwaves, milc, libquantum).  Perfect spatial locality: consecutive
    accesses fall in the same or the next cache line, so line-granularity
    misses coalesce in the MSHRs and DRAM sees row-buffer hits — high
    memory concurrency, size-insensitive miss behaviour once the footprint
    exceeds the cache.

``working_set``
    Uniform random accesses within a footprint (hash tables, hot data
    structures).  Miss rate collapses once the cache covers the footprint —
    the knee that Fig. 6/7 sweep across L1 sizes.

``zipf``
    Skewed accesses within a footprint (hot/cold separation typical of
    integer codes such as gcc, gobmk); miss rate falls gradually with
    cache size rather than at a single knee.

``chase``
    A random-permutation pointer walk (mcf, omnetpp): every access depends
    on the previous one (dependent loads), destroying memory-level
    parallelism; misses are almost all *pure* misses in C-AMAT terms.

All kernels are vectorized (numpy) and deterministic given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.rng import make_rng
from repro.util.validation import check_fraction, check_int

__all__ = [
    "strided_addresses",
    "working_set_addresses",
    "zipf_addresses",
    "pointer_chase_addresses",
    "KernelSpec",
    "mixture_addresses",
    "MixtureResult",
]

_LINE = 64  # address granularity used by generators; the caches re-derive


def strided_addresses(
    n: int,
    *,
    footprint_bytes: int,
    stride_bytes: int = 8,
    base: int = 0,
    start_offset: int = 0,
) -> np.ndarray:
    """Sequential sweep: ``base + (offset + i*stride) mod footprint``."""
    check_int("n", n, minimum=0)
    check_int("footprint_bytes", footprint_bytes, minimum=1)
    check_int("stride_bytes", stride_bytes, minimum=1)
    offsets = (start_offset + np.arange(n, dtype=np.int64) * stride_bytes) % footprint_bytes
    return base + offsets


def working_set_addresses(
    n: int,
    *,
    footprint_bytes: int,
    base: int = 0,
    seed: "int | np.random.Generator | None" = 0,
) -> np.ndarray:
    """Uniform random line-granularity accesses within a footprint."""
    check_int("n", n, minimum=0)
    check_int("footprint_bytes", footprint_bytes, minimum=1)
    rng = make_rng(seed)
    n_lines = max(footprint_bytes // _LINE, 1)
    lines = rng.integers(0, n_lines, size=n)
    within = rng.integers(0, _LINE // 8, size=n) * 8
    return base + lines * _LINE + within


def zipf_addresses(
    n: int,
    *,
    footprint_bytes: int,
    alpha: float = 1.2,
    base: int = 0,
    seed: "int | np.random.Generator | None" = 0,
) -> np.ndarray:
    """Zipf-skewed line accesses: line ranks drawn with P(r) ~ 1/r^alpha.

    Ranks are scattered over the footprint with a fixed pseudo-random
    permutation so hot lines are not physically adjacent (no accidental
    spatial locality).
    """
    check_int("n", n, minimum=0)
    check_int("footprint_bytes", footprint_bytes, minimum=1)
    if alpha <= 0:
        raise ValueError(f"alpha must be > 0, got {alpha}")
    rng = make_rng(seed)
    n_lines = max(footprint_bytes // _LINE, 1)
    # Inverse-CDF sampling over a truncated zeta distribution.
    ranks = np.arange(1, n_lines + 1, dtype=np.float64)
    weights = ranks ** (-alpha)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    u = rng.random(n)
    line_ranks = np.searchsorted(cdf, u)
    perm = make_rng(12345).permutation(n_lines)
    lines = perm[np.clip(line_ranks, 0, n_lines - 1)]
    return base + lines.astype(np.int64) * _LINE


def pointer_chase_addresses(
    n: int,
    *,
    footprint_bytes: int,
    base: int = 0,
    seed: "int | np.random.Generator | None" = 0,
) -> np.ndarray:
    """Walk a random-permutation cycle over the footprint's lines.

    The walk visits every line once per lap in a scattered order — the
    classic latency-bound microbenchmark pattern and a stand-in for
    pointer-heavy codes.  Pair with ``depends=True`` accesses so the
    simulator serializes them.
    """
    check_int("n", n, minimum=0)
    check_int("footprint_bytes", footprint_bytes, minimum=1)
    rng = make_rng(seed)
    n_lines = max(footprint_bytes // _LINE, 1)
    perm = rng.permutation(n_lines).astype(np.int64)
    idx = np.arange(n, dtype=np.int64) % n_lines
    lines = perm[idx]
    return base + lines * _LINE


@dataclass(frozen=True)
class KernelSpec:
    """Declarative description of one mixture component.

    ``kind`` is one of ``strided``, ``working_set``, ``zipf``, ``chase``.
    ``weight`` is the fraction of accesses drawn from this kernel.
    ``dependent`` marks the kernel's accesses as serialized (dependent
    loads); it defaults to True for ``chase``.
    """

    kind: str
    weight: float
    footprint_bytes: int
    stride_bytes: int = 64
    alpha: float = 1.2
    base: int | None = None
    dependent: bool | None = None
    #: Accesses from this kernel arrive in back-to-back runs of this length
    #: (e.g. a row of a remote array touched at once).  Bursts are what let
    #: a well-provisioned machine overlap the resulting misses (high C_M)
    #: while a starved one serializes them — the paper's central effect.
    burst_length: int = 1

    def __post_init__(self) -> None:
        if self.kind not in ("strided", "working_set", "zipf", "chase"):
            raise ValueError(f"unknown kernel kind {self.kind!r}")
        check_fraction("weight", self.weight)
        check_int("footprint_bytes", self.footprint_bytes, minimum=1)
        check_int("burst_length", self.burst_length, minimum=1)

    @property
    def is_dependent(self) -> bool:
        """Whether accesses from this kernel serialize on the previous access."""
        if self.dependent is not None:
            return self.dependent
        return self.kind == "chase"


@dataclass
class MixtureResult:
    """Addresses plus the per-access dependency flags of a mixture draw."""

    addresses: np.ndarray
    depends: np.ndarray
    component: np.ndarray = field(repr=False)


def mixture_addresses(
    n: int,
    kernels: "list[KernelSpec]",
    *,
    seed: "int | np.random.Generator | None" = 0,
    region_gap_bytes: int = 1 << 30,
) -> MixtureResult:
    """Interleave kernels per access according to their weights.

    Each kernel gets a disjoint address region (``region_gap_bytes`` apart,
    unless the spec pins ``base``) so components never alias.  Within a
    kernel the access order is preserved (a strided component stays a
    coherent stream even when interleaved with others).
    """
    check_int("n", n, minimum=0)
    if not kernels:
        raise ValueError("need at least one kernel")
    total_w = sum(k.weight for k in kernels)
    if total_w <= 0:
        raise ValueError("kernel weights must sum to a positive value")
    rng = make_rng(seed)
    if all(k.burst_length == 1 for k in kernels):
        probs = np.array([k.weight / total_w for k in kernels])
        choice = rng.choice(len(kernels), size=n, p=probs)
    else:
        # Draw whole runs: a kernel with burst_length b is selected with
        # probability proportional to weight/b and then emits b consecutive
        # accesses, preserving the long-run per-access weights.
        run_w = np.array([k.weight / k.burst_length for k in kernels])
        run_p = run_w / run_w.sum()
        max_runs = n  # upper bound; each run emits >= 1 access
        draws = rng.choice(len(kernels), size=max_runs, p=run_p)
        lengths = np.array([kernels[d].burst_length for d in draws])
        cum = np.cumsum(lengths)
        n_runs = int(np.searchsorted(cum, n) + 1)
        choice = np.repeat(draws[:n_runs], lengths[:n_runs])[:n]

    addresses = np.zeros(n, dtype=np.int64)
    depends = np.zeros(n, dtype=bool)
    for ki, spec in enumerate(kernels):
        mask = choice == ki
        cnt = int(mask.sum())
        if cnt == 0:
            continue
        base = spec.base if spec.base is not None else ki * region_gap_bytes
        sub_seed = make_rng(rng.integers(0, 2**63 - 1))
        if spec.kind == "strided":
            addrs = strided_addresses(
                cnt, footprint_bytes=spec.footprint_bytes,
                stride_bytes=spec.stride_bytes, base=base,
            )
        elif spec.kind == "working_set":
            addrs = working_set_addresses(
                cnt, footprint_bytes=spec.footprint_bytes, base=base, seed=sub_seed
            )
        elif spec.kind == "zipf":
            addrs = zipf_addresses(
                cnt, footprint_bytes=spec.footprint_bytes, alpha=spec.alpha,
                base=base, seed=sub_seed,
            )
        else:  # chase
            addrs = pointer_chase_addresses(
                cnt, footprint_bytes=spec.footprint_bytes, base=base, seed=sub_seed
            )
        addresses[mask] = addrs
        if spec.is_dependent:
            depends[mask] = True
    return MixtureResult(addresses=addresses, depends=depends, component=choice)
