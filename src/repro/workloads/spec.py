"""SPEC CPU2006-like benchmark profiles.

The paper evaluates with SPEC CPU2006 reference runs.  Real SPEC traces are
proprietary, so each benchmark is substituted by a synthetic profile — a
kernel mixture (:mod:`repro.workloads.generators`) plus a compute intensity
— calibrated to reproduce the qualitative, per-benchmark facts the paper's
evaluation relies on (Section V-B):

* **401.bzip2** — compact working set: 4 KB of L1 already captures it, and
  its L2 traffic (APC2) stays stable across L1 sizes.
* **403.gcc** — skewed, wide footprint: keeps gaining up to 64 KB of L1,
  with APC2 demand decreasing at every step.
* **429.mcf** — pointer chasing over a huge structure plus a small hot
  region: its APC2 drops at the first L1 size increase and then flattens.
* **416.gamess** — computation-heavy with a mid-size working set: larger
  L1 both improves its APC1 and visibly reduces its L2 bandwidth demand.
* **433.milc** — pure streaming over a many-MB footprint: L1 size barely
  matters for either APC1 or APC2.

The remaining profiles fill out the 16-benchmark multiprogram mix of the
Fig. 8 experiment with representative integer/floating-point behaviours.
Every profile is deterministic given the experiment seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import derive_seed, make_rng
from repro.util.validation import check_int
from repro.workloads.generators import KernelSpec, mixture_addresses
from repro.workloads.trace import Trace

__all__ = [
    "BenchmarkProfile",
    "BENCHMARKS",
    "SELECTED_16",
    "get_benchmark",
    "benchmark_names",
]

KB = 1024
MB = 1024 * 1024


@dataclass(frozen=True)
class BenchmarkProfile:
    """One synthetic benchmark: kernel mixture + compute intensity.

    ``compute_per_access`` sets the mean number of compute instructions
    between memory accesses (so ``f_mem = 1/(1 + compute_per_access)``);
    ``compute_cv`` adds burstiness to the gaps (coefficient of variation of
    a gamma-shaped gap distribution, rounded to integers).
    """

    name: str
    kernels: tuple[KernelSpec, ...]
    compute_per_access: float = 2.0
    compute_cv: float = 0.5
    #: Fraction of compute instructions that depend on the previous compute
    #: instruction's result.  This bounds ILP (and hence CPI_exe) the way
    #: real dependency chains do; without it an ideal W-wide core reaches
    #: CPI_exe = 1/W, which no SPEC code does.
    ilp_dependency: float = 0.4
    description: str = ""
    suite: str = "int"

    def __post_init__(self) -> None:
        if not self.kernels:
            raise ValueError("profile needs at least one kernel")
        if self.compute_per_access < 0:
            raise ValueError("compute_per_access must be >= 0")
        if not 0.0 <= self.ilp_dependency <= 1.0:
            raise ValueError("ilp_dependency must be in [0, 1]")

    @property
    def f_mem(self) -> float:
        """Expected fraction of memory instructions."""
        return 1.0 / (1.0 + self.compute_per_access)

    def trace(self, n_mem: int = 20000, *, seed: int = 0) -> Trace:
        """Generate an instruction trace with *n_mem* memory accesses."""
        check_int("n_mem", n_mem, minimum=1)
        base_seed = derive_seed(seed, "benchmark", self.name)
        mix = mixture_addresses(n_mem, list(self.kernels), seed=base_seed)
        rng = make_rng(derive_seed(base_seed, "gaps"))
        mean = self.compute_per_access
        if mean > 0 and self.compute_cv > 0:
            shape = 1.0 / (self.compute_cv**2)
            gaps = np.round(rng.gamma(shape, mean / shape, size=n_mem)).astype(np.int64)
        else:
            gaps = np.full(n_mem, int(round(mean)), dtype=np.int64)
        trace = Trace.from_memory_addresses(
            mix.addresses,
            compute_per_access=gaps,
            load_fraction=0.75,
            name=self.name,
            seed=derive_seed(base_seed, "loads"),
            depends=mix.depends,
        )
        if self.ilp_dependency > 0:
            dep_rng = make_rng(derive_seed(base_seed, "ilp"))
            dep = (
                trace.depends
                if trace.depends is not None
                else np.zeros(trace.n_instructions, dtype=bool)
            )
            compute_mask = ~trace.is_mem
            n_compute = int(compute_mask.sum())
            dep[compute_mask] = dep_rng.random(n_compute) < self.ilp_dependency
            trace.depends = dep
        trace.metadata.update(
            benchmark=self.name, suite=self.suite, profile_f_mem=self.f_mem
        )
        return trace


def _k(kind: str, weight: float, footprint: int, **kw) -> KernelSpec:
    return KernelSpec(kind=kind, weight=weight, footprint_bytes=footprint, **kw)


BENCHMARKS: dict[str, BenchmarkProfile] = {
    p.name: p
    for p in [
        BenchmarkProfile(
            name="400.perlbench",
            kernels=(
                _k("zipf", 0.7, 24 * KB, alpha=1.3),
                _k("working_set", 0.2, 256 * KB),
                _k("chase", 0.1, 1 * MB),
            ),
            compute_per_access=2.5,
            description="interpreter: skewed hot structures + scattered heap",
        ),
        BenchmarkProfile(
            name="401.bzip2",
            kernels=(
                _k("working_set", 0.92, 2 * KB),
                # Line-granularity stream over a 2 MB window: it misses L1
                # and the LLC equally at every L1 size, so both APC1 and
                # APC2 stay flat across the Fig. 6/7 sweep (the paper's
                # bzip2 facts).
                _k("strided", 0.08, 2 * MB, stride_bytes=64),
            ),
            compute_per_access=2.0,
            description="compact working set; 4 KB L1 suffices, APC2 stable",
        ),
        BenchmarkProfile(
            name="403.gcc",
            kernels=(
                _k("zipf", 0.55, 56 * KB, alpha=0.9),
                # IR/symbol-table pointer walks over a mid-size footprint:
                # dependent misses that a 64 KB L1 turns into dependent
                # hits — the source of gcc's strong L1-size sensitivity.
                _k("chase", 0.25, 40 * KB),
                _k("working_set", 0.15, 40 * KB),
                _k("strided", 0.05, 4 * MB, stride_bytes=64),
            ),
            compute_per_access=2.0,
            description="wide skewed footprint; keeps gaining up to 64 KB",
        ),
        BenchmarkProfile(
            name="410.bwaves",
            kernels=(
                _k("strided", 0.45, 96 * KB, stride_bytes=8),
                _k("strided", 0.30, 64 * KB, stride_bytes=8),
                _k("working_set", 0.17, 12 * KB),
                _k("working_set", 0.08, 8 * MB, burst_length=12),
            ),
            compute_per_access=2.5,
            ilp_dependency=0.75,
            suite="fp",
            description="blast-wave stencil: LLC-resident streams + bursty "
            "far-memory touches; memory-bound and concurrency-hungry",
        ),
        BenchmarkProfile(
            name="416.gamess",
            kernels=(
                _k("working_set", 0.93, 40 * KB),
                _k("strided", 0.07, 2 * MB, stride_bytes=64),
            ),
            compute_per_access=4.0,
            suite="fp",
            description="quantum chemistry: compute-heavy, mid-size working set",
        ),
        BenchmarkProfile(
            name="429.mcf",
            kernels=(
                _k("chase", 0.55, 8 * MB),
                _k("working_set", 0.35, 8 * KB),
                _k("strided", 0.10, 8 * MB, stride_bytes=64),
            ),
            compute_per_access=1.0,
            description="network simplex: pointer chase + small hot region",
        ),
        BenchmarkProfile(
            name="433.milc",
            kernels=(
                _k("strided", 0.9, 32 * MB, stride_bytes=16),
                _k("working_set", 0.1, 2 * KB),
            ),
            compute_per_access=1.5,
            suite="fp",
            description="lattice QCD: pure streaming, L1-size-insensitive",
        ),
        BenchmarkProfile(
            name="434.zeusmp",
            kernels=(
                _k("strided", 0.6, 16 * MB, stride_bytes=16),
                _k("working_set", 0.4, 16 * KB),
            ),
            compute_per_access=2.5,
            suite="fp",
            description="astrophysics CFD: streams + medium working set",
        ),
        BenchmarkProfile(
            name="435.gromacs",
            kernels=(
                _k("working_set", 0.7, 12 * KB),
                _k("strided", 0.3, 4 * MB, stride_bytes=64),
            ),
            compute_per_access=4.5,
            suite="fp",
            description="molecular dynamics: compute-bound, small neighbour lists",
        ),
        BenchmarkProfile(
            name="436.cactusADM",
            kernels=(
                _k("strided", 0.75, 24 * MB, stride_bytes=16),
                _k("working_set", 0.25, 28 * KB),
            ),
            compute_per_access=2.0,
            suite="fp",
            description="numerical relativity: big stencil sweeps",
        ),
        BenchmarkProfile(
            name="437.leslie3d",
            kernels=(
                _k("strided", 0.65, 12 * MB, stride_bytes=16),
                _k("working_set", 0.35, 20 * KB),
            ),
            compute_per_access=2.0,
            suite="fp",
            description="combustion CFD: streams + medium reuse",
        ),
        BenchmarkProfile(
            name="444.namd",
            kernels=(
                _k("working_set", 0.85, 8 * KB),
                _k("strided", 0.15, 2 * MB, stride_bytes=64),
            ),
            compute_per_access=5.0,
            suite="fp",
            description="molecular dynamics: tight compute kernel",
        ),
        BenchmarkProfile(
            name="445.gobmk",
            kernels=(
                _k("zipf", 0.8, 32 * KB, alpha=1.1),
                _k("working_set", 0.2, 512 * KB),
            ),
            compute_per_access=3.0,
            description="Go engine: skewed board structures",
        ),
        BenchmarkProfile(
            name="450.soplex",
            kernels=(
                _k("working_set", 0.4, 48 * KB),
                _k("strided", 0.35, 16 * MB, stride_bytes=64),
                _k("chase", 0.25, 4 * MB),
            ),
            compute_per_access=1.5,
            suite="fp",
            description="LP solver: sparse matrix sweeps + indirection",
        ),
        BenchmarkProfile(
            name="456.hmmer",
            kernels=(
                _k("working_set", 0.8, 6 * KB),
                _k("strided", 0.2, 1 * MB, stride_bytes=64),
            ),
            compute_per_access=3.5,
            description="profile HMM search: small tables, compute-heavy",
        ),
        BenchmarkProfile(
            name="458.sjeng",
            kernels=(
                _k("zipf", 0.75, 48 * KB, alpha=1.0),
                _k("working_set", 0.25, 1 * MB),
            ),
            compute_per_access=3.0,
            description="chess engine: hash tables with skewed reuse",
        ),
        BenchmarkProfile(
            name="462.libquantum",
            kernels=(
                _k("strided", 0.95, 48 * MB, stride_bytes=8),
                _k("working_set", 0.05, 1 * KB),
            ),
            compute_per_access=1.0,
            description="quantum simulation: single giant stream",
        ),
        BenchmarkProfile(
            name="470.lbm",
            kernels=(
                _k("strided", 0.85, 32 * MB, stride_bytes=16),
                _k("working_set", 0.15, 8 * KB),
            ),
            compute_per_access=1.5,
            suite="fp",
            description="lattice Boltzmann: structured grid streaming",
        ),
        BenchmarkProfile(
            name="471.omnetpp",
            kernels=(
                _k("chase", 0.45, 4 * MB),
                _k("zipf", 0.45, 64 * KB, alpha=1.0),
                _k("working_set", 0.10, 1 * MB),
            ),
            compute_per_access=2.0,
            description="discrete event simulation: heap-allocated event graph",
        ),
        BenchmarkProfile(
            name="473.astar",
            kernels=(
                _k("chase", 0.4, 2 * MB),
                _k("working_set", 0.6, 32 * KB),
            ),
            compute_per_access=2.5,
            description="path finding: graph walk + open-list reuse",
        ),
    ]
}

#: The sixteen-benchmark mix used by the Fig. 8 multiprogram experiment.
SELECTED_16: tuple[str, ...] = (
    "400.perlbench",
    "401.bzip2",
    "403.gcc",
    "410.bwaves",
    "416.gamess",
    "429.mcf",
    "433.milc",
    "434.zeusmp",
    "435.gromacs",
    "436.cactusADM",
    "444.namd",
    "445.gobmk",
    "450.soplex",
    "456.hmmer",
    "462.libquantum",
    "471.omnetpp",
)


def get_benchmark(name: str) -> BenchmarkProfile:
    """Look up a profile by full name (``"429.mcf"``) or suffix (``"mcf"``)."""
    if name in BENCHMARKS:
        return BENCHMARKS[name]
    matches = [p for key, p in BENCHMARKS.items() if key.split(".", 1)[-1] == name]
    if len(matches) == 1:
        return matches[0]
    raise KeyError(f"unknown benchmark {name!r}; known: {sorted(BENCHMARKS)}")


def benchmark_names() -> list[str]:
    """All profile names, sorted."""
    return sorted(BENCHMARKS)
