"""Synthetic SPEC-like workload generation (the SPEC CPU2006 substitute)."""

from repro.workloads.locality import (
    HISTOGRAM_VERSION,
    LocalityProfile,
    ReuseHistogram,
    profile_trace,
    reuse_histogram,
)
from repro.workloads.generators import (
    KernelSpec,
    MixtureResult,
    mixture_addresses,
    pointer_chase_addresses,
    strided_addresses,
    working_set_addresses,
    zipf_addresses,
)
from repro.workloads.micro import (
    MachineProfile,
    bandwidth_probe,
    characterize,
    latency_probe,
    mlp_probe,
)
from repro.workloads.phases import (
    Burst,
    IntervalDetector,
    bursty_trace,
    detection_rate,
    generate_bursts,
)
from repro.workloads.spec import (
    BENCHMARKS,
    SELECTED_16,
    BenchmarkProfile,
    benchmark_names,
    get_benchmark,
)
from repro.workloads.trace import Trace

__all__ = [
    "BENCHMARKS",
    "BenchmarkProfile",
    "Burst",
    "HISTOGRAM_VERSION",
    "IntervalDetector",
    "KernelSpec",
    "LocalityProfile",
    "MachineProfile",
    "MixtureResult",
    "ReuseHistogram",
    "SELECTED_16",
    "Trace",
    "bandwidth_probe",
    "benchmark_names",
    "bursty_trace",
    "characterize",
    "detection_rate",
    "generate_bursts",
    "get_benchmark",
    "latency_probe",
    "mlp_probe",
    "mixture_addresses",
    "pointer_chase_addresses",
    "profile_trace",
    "reuse_histogram",
    "strided_addresses",
    "working_set_addresses",
    "zipf_addresses",
]
