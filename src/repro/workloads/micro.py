"""Machine-characterization microbenchmarks (lmbench-style probes).

Small, purpose-built traces that expose one property of a simulated
machine at a time — the way lmbench/STREAM characterize real hardware.
Useful for validating a :class:`~repro.sim.params.MachineConfig` before an
experiment, and used by the test suite to pin the simulator's timing
semantics end to end.

* :func:`latency_probe` — a dependent pointer chase over a footprint:
  the measured cycles per access converge to the round-trip latency of
  whichever layer the footprint lands in (L1 / L2 / L3 / DRAM).
* :func:`bandwidth_probe` — an independent line-granularity stream:
  lines per cycle converge to the bottleneck supply bandwidth.
* :func:`mlp_probe` — bursts of independent far misses: the achieved
  overlap (average concurrent misses) converges to the machine's usable
  memory-level parallelism (bounded by MSHRs / window / banks).
* :func:`characterize` — run all probes over a ladder of footprints and
  return a :class:`MachineProfile` summary table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from typing import TYPE_CHECKING

from repro.util.validation import check_int, safe_ratio
from repro.workloads.generators import pointer_chase_addresses, strided_addresses
from repro.workloads.trace import Trace

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.params import MachineConfig


def _simulator(config, seed):
    # Imported lazily: repro.sim.engine itself imports repro.workloads.trace,
    # so a module-level import here would create a package-init cycle.
    from repro.sim.engine import HierarchySimulator

    return HierarchySimulator(config, seed=seed)

__all__ = [
    "latency_probe",
    "bandwidth_probe",
    "mlp_probe",
    "MachineProfile",
    "characterize",
]

KB = 1024


def latency_probe(
    config: "MachineConfig",
    footprint_bytes: int,
    *,
    n_accesses: int = 4000,
    seed: int = 0,
) -> float:
    """Measured cycles per dependent access over *footprint_bytes*.

    A random-permutation chase with every access dependent on the previous
    one: no overlap is possible, so cycles/access equals the load-to-use
    round trip of the layer holding the footprint.
    """
    check_int("n_accesses", n_accesses, minimum=1)
    addrs = pointer_chase_addresses(
        n_accesses, footprint_bytes=footprint_bytes, seed=seed
    )
    trace = Trace.from_memory_addresses(
        addrs, compute_per_access=0, name=f"lat-{footprint_bytes}",
        depends=np.ones(n_accesses, dtype=bool),
    )
    sim = _simulator(config, seed)
    sim.warm_caches(trace)
    result = sim.run(trace)
    return result.total_cycles / n_accesses


def bandwidth_probe(
    config: "MachineConfig",
    footprint_bytes: int,
    *,
    n_accesses: int = 6000,
    seed: int = 0,
) -> float:
    """Sustained line-fetch bandwidth (lines per cycle) over a footprint.

    An independent line-granularity sweep; with ample window resources the
    achieved rate is the bottleneck layer's supply bandwidth.
    """
    check_int("n_accesses", n_accesses, minimum=1)
    line = config.l1.line_bytes
    addrs = strided_addresses(
        n_accesses, footprint_bytes=footprint_bytes, stride_bytes=line
    )
    trace = Trace.from_memory_addresses(
        addrs, compute_per_access=0, name=f"bw-{footprint_bytes}"
    )
    # Generous core resources so the memory system is the bottleneck.
    cfg = config.with_knobs(iw_size=256, rob_size=256)
    sim = _simulator(cfg, seed)
    sim.warm_caches(trace)
    result = sim.run(trace)
    return safe_ratio(n_accesses, result.total_cycles)


def mlp_probe(
    config: "MachineConfig",
    *,
    footprint_bytes: int = 64 << 20,
    n_accesses: int = 3000,
    seed: int = 0,
) -> float:
    """Achieved memory-level parallelism on independent far misses.

    Random line-granularity accesses over a DRAM-resident footprint; the
    peak number of simultaneously outstanding primary misses (MSHR
    occupancy) is the machine's usable MLP — bounded by the MSHR count and
    by how many misses the window can expose.
    """
    check_int("n_accesses", n_accesses, minimum=1)
    rng = np.random.default_rng(seed)
    n_lines = footprint_bytes // config.l1.line_bytes
    addrs = rng.integers(0, n_lines, n_accesses) * config.l1.line_bytes
    trace = Trace.from_memory_addresses(addrs, compute_per_access=0, name="mlp")
    sim = _simulator(config, seed)
    result = sim.run(trace)
    return float(result.component_stats["l1_mshr_peak"])


@dataclass
class MachineProfile:
    """Characterization summary produced by :func:`characterize`."""

    config_name: str
    latency_cycles: dict[int, float] = field(default_factory=dict)
    bandwidth_lines_per_cycle: dict[int, float] = field(default_factory=dict)
    mlp: float = 0.0

    def as_rows(self) -> list[tuple[str, float]]:
        """Flat (label, value) rows for table rendering."""
        rows: list[tuple[str, float]] = []
        for fp, lat in sorted(self.latency_cycles.items()):
            rows.append((f"latency @ {fp // KB} KB (cycles)", lat))
        for fp, bw in sorted(self.bandwidth_lines_per_cycle.items()):
            rows.append((f"bandwidth @ {fp // KB} KB (lines/cycle)", bw))
        rows.append(("memory-level parallelism", self.mlp))
        return rows


def characterize(
    config: "MachineConfig",
    *,
    footprints: "tuple[int, ...] | None" = None,
    seed: int = 0,
) -> MachineProfile:
    """Run the probe suite over a footprint ladder."""
    if footprints is None:
        footprints = (8 * KB, 64 * KB, 4 << 20)
    profile = MachineProfile(config_name=config.name)
    for fp in footprints:
        profile.latency_cycles[fp] = latency_probe(config, fp, seed=seed)
        profile.bandwidth_lines_per_cycle[fp] = bandwidth_probe(config, fp, seed=seed)
    profile.mlp = mlp_probe(config, seed=seed)
    return profile
