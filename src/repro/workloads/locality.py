"""One-pass reuse/stack-distance profiling of a :class:`Trace`.

The tier-0 surrogate (:mod:`repro.analysis.surrogate`) predicts per-level
miss ratios for *every* cache size from locality statistics computed once
per trace.  The statistic is the classic LRU **stack distance**: for each
memory access, the number of *distinct* cache lines touched since the
previous access to the same line.  A fully-associative LRU cache of
capacity ``C`` lines hits exactly when the stack distance is ``< C``, so
the whole miss-ratio curve ``MR(C)`` is one survival function of the
stack-distance histogram ("Fast Modeling L2 Cache Reuse Distance
Histograms", arXiv:1907.05068; docs/MODEL.md section 10).

Distances are computed line-granular with the Fenwick-tree (binary
indexed tree) last-occurrence algorithm — O(M log M) for M accesses, one
pass, no materialized LRU stack.  The per-access loop is plain Python by
design: it runs **once per trace content digest** (results are cached by
:mod:`repro.runtime.histogram_store`), never per configuration, so the
vectorization guideline's "measure first" bar is not met by the extra
complexity of a numpy phase-splitting variant.

Everything here is pure: no I/O, no ambient state.  The disk cache lives
in :mod:`repro.runtime.histogram_store`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.workloads.trace import Trace

__all__ = [
    "HISTOGRAM_VERSION",
    "ReuseHistogram",
    "LocalityProfile",
    "reuse_histogram",
    "profile_trace",
]

#: Bump when the histogram/profile definition changes incompatibly;
#: part of the :mod:`repro.runtime.histogram_store` cache key, so stale
#: entries are invalidated the same way engine bumps invalidate the
#: evaluation cache.
HISTOGRAM_VERSION = 1


def _stack_distances(lines: "list[int]") -> np.ndarray:
    """Per-access LRU stack distance; -1 marks a cold (first) access.

    Fenwick tree over access positions: position ``i`` is marked while it
    is the *last* occurrence of some line.  The distance of an access at
    ``i`` whose line was last touched at ``p`` is then the number of
    marked positions strictly between ``p`` and ``i`` — the distinct
    other lines touched in between.
    """
    n = len(lines)
    out = np.empty(n, dtype=np.int64)
    tree = [0] * (n + 1)

    def add(pos: int, delta: int) -> None:
        while pos <= n:
            tree[pos] += delta
            pos += pos & -pos

    def prefix(pos: int) -> int:
        total = 0
        while pos > 0:
            total += tree[pos]
            pos -= pos & -pos
        return total

    last: "dict[int, int]" = {}
    for i, line in enumerate(lines):
        p = last.get(line)
        if p is None:
            out[i] = -1
        else:
            # Marked positions in 1-indexed (p+1, i] = distinct lines
            # touched since p, excluding this line itself.
            out[i] = prefix(i) - prefix(p + 1)
            add(p + 1, -1)
        last[line] = i
        add(i + 1, +1)
    return out


@dataclass(frozen=True)
class ReuseHistogram:
    """Stack-distance histogram of one trace at one line granularity.

    ``distances``/``counts`` are the sorted unique distances (in lines)
    with their access counts; ``cold`` counts first-touch accesses (which
    miss in every finite cache).  Under ``warm=True`` the distances model
    the post-warmup steady state — each access's distance is measured as
    if the whole trace had already run once (the second half of the
    doubled trace), matching the simulator's ``warm_caches`` semantics —
    so there are no cold accesses.
    """

    distances: np.ndarray
    counts: np.ndarray
    cold: int
    n_accesses: int
    line_bytes: int
    warm: bool
    trace_digest: str
    version: int = HISTOGRAM_VERSION
    #: Suffix sums of ``counts``, built lazily for O(log K) queries.
    _tail: "np.ndarray | None" = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "distances", np.asarray(self.distances, dtype=np.int64))
        object.__setattr__(self, "counts", np.asarray(self.counts, dtype=np.int64))
        if self.distances.shape != self.counts.shape:
            raise ValueError("distances and counts must have equal shapes")

    def _tail_sums(self) -> np.ndarray:
        tail = self._tail
        if tail is None:
            # counts reversed-cumsum, with a trailing 0 for "past the end".
            tail = np.concatenate(
                [np.cumsum(self.counts[::-1])[::-1], np.zeros(1, dtype=np.int64)]
            )
            object.__setattr__(self, "_tail", tail)
        return tail

    def miss_fraction(self, capacity_lines: int) -> float:
        """Predicted miss ratio of a ``capacity_lines``-line LRU cache.

        ``P(stack distance >= capacity) + P(cold)`` — the survival
        function of the histogram.  Monotonically non-increasing in the
        capacity by construction.
        """
        if self.n_accesses == 0:
            return 0.0
        if capacity_lines <= 0:
            return 1.0
        idx = int(np.searchsorted(self.distances, capacity_lines, side="left"))
        survivors = int(self._tail_sums()[idx])
        return (survivors + self.cold) / self.n_accesses

    def to_dict(self) -> dict:
        """JSON-serializable form, round-tripped by :meth:`from_dict`."""
        return {
            "distances": self.distances.tolist(),
            "counts": self.counts.tolist(),
            "cold": self.cold,
            "n_accesses": self.n_accesses,
            "line_bytes": self.line_bytes,
            "warm": self.warm,
            "trace_digest": self.trace_digest,
            "version": self.version,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ReuseHistogram":
        """Inverse of :meth:`to_dict`."""
        return cls(
            distances=np.asarray(data["distances"], dtype=np.int64),
            counts=np.asarray(data["counts"], dtype=np.int64),
            cold=int(data["cold"]),
            n_accesses=int(data["n_accesses"]),
            line_bytes=int(data["line_bytes"]),
            warm=bool(data["warm"]),
            trace_digest=str(data["trace_digest"]),
            version=int(data["version"]),
        )


def reuse_histogram(
    trace: Trace, *, line_bytes: int = 64, warm: bool = True
) -> ReuseHistogram:
    """Compute the stack-distance histogram of *trace* at *line_bytes*.

    Depends only on the trace *content* (same digest -> same histogram,
    regardless of name/metadata or generation order of equal arrays).
    """
    if line_bytes <= 0 or line_bytes & (line_bytes - 1):
        raise ValueError(f"line_bytes must be a positive power of two, got {line_bytes}")
    offset_bits = line_bytes.bit_length() - 1
    lines_arr = trace.memory_addresses >> offset_bits
    n = int(lines_arr.shape[0])
    if n == 0:
        return ReuseHistogram(
            distances=np.empty(0, dtype=np.int64), counts=np.empty(0, dtype=np.int64),
            cold=0, n_accesses=0, line_bytes=line_bytes, warm=warm,
            trace_digest=trace.content_digest(),
        )
    lines = lines_arr.tolist()
    if warm:
        # Steady state after warm_caches(trace): distance of each access as
        # the second half of the doubled trace, so every line's first
        # measured touch sees its wrap-around reuse distance, not a cold miss.
        sds = _stack_distances(lines + lines)[n:]
        cold = 0
    else:
        sds = _stack_distances(lines)
        cold = int(np.count_nonzero(sds < 0))
        sds = sds[sds >= 0]
    distances, counts = np.unique(sds, return_counts=True)
    return ReuseHistogram(
        distances=distances, counts=counts.astype(np.int64), cold=cold,
        n_accesses=n, line_bytes=line_bytes, warm=warm,
        trace_digest=trace.content_digest(),
    )


@dataclass(frozen=True)
class LocalityProfile:
    """Everything the tier-0 predictor needs to know about one trace.

    The reuse histogram plus the processor-facing trace statistics
    (memory fraction, dependency fractions) — computed in one profiling
    pass, keyed by the trace content digest, valid for *every*
    :class:`~repro.sim.params.MachineConfig` sharing the line size.
    """

    histogram: ReuseHistogram
    f_mem: float
    n_instructions: int
    #: Fraction of memory accesses that depend on the previous access's
    #: data (pointer chasing; bounds memory-level parallelism).
    dep_frac_mem: float
    #: Fraction of compute instructions that depend on their predecessor
    #: (bounds ILP and hence CPI_exe).
    dep_frac_compute: float

    @property
    def trace_digest(self) -> str:
        """Content digest of the profiled trace."""
        return self.histogram.trace_digest

    @property
    def line_bytes(self) -> int:
        """Line granularity of the histogram."""
        return self.histogram.line_bytes

    @property
    def warm(self) -> bool:
        """Whether the histogram models the post-warmup steady state."""
        return self.histogram.warm

    def to_dict(self) -> dict:
        """JSON-serializable form, round-tripped by :meth:`from_dict`."""
        return {
            "histogram": self.histogram.to_dict(),
            "f_mem": self.f_mem,
            "n_instructions": self.n_instructions,
            "dep_frac_mem": self.dep_frac_mem,
            "dep_frac_compute": self.dep_frac_compute,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LocalityProfile":
        """Inverse of :meth:`to_dict`."""
        return cls(
            histogram=ReuseHistogram.from_dict(data["histogram"]),
            f_mem=float(data["f_mem"]),
            n_instructions=int(data["n_instructions"]),
            dep_frac_mem=float(data["dep_frac_mem"]),
            dep_frac_compute=float(data["dep_frac_compute"]),
        )


def profile_trace(
    trace: Trace, *, line_bytes: int = 64, warm: bool = True
) -> LocalityProfile:
    """One profiling pass over *trace*: histogram + processor statistics."""
    hist = reuse_histogram(trace, line_bytes=line_bytes, warm=warm)
    n = trace.n_instructions
    if trace.depends is not None and n:
        mem_dep = trace.depends[trace.is_mem]
        comp_dep = trace.depends[~trace.is_mem]
        dep_mem = float(mem_dep.mean()) if mem_dep.size else 0.0
        dep_comp = float(comp_dep.mean()) if comp_dep.size else 0.0
    else:
        dep_mem = dep_comp = 0.0
    return LocalityProfile(
        histogram=hist,
        f_mem=min(trace.f_mem, 1.0),
        n_instructions=n,
        dep_frac_mem=dep_mem,
        dep_frac_compute=dep_comp,
    )
